//! Static hash index over a heap file column.
//!
//! Buckets are page chains of `(key hash, rid)` entries, themselves stored
//! through the buffer pool — an index probe costs a bucket-page pin +
//! latch + scan, then a heap-page pin per matching rid, mirroring how a
//! disk-based RDBMS pays for an indexed join (paper Table 3).

use crate::buffer::{BufferPool, PageId};
use crate::heap::{Field, HeapFile, Rid};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Entry layout: key hash u64 | page u32 | slot u16  (14 bytes)
const ENTRY: usize = 14;

/// A static hash index on one column.
pub struct HashIndex {
    pool: Arc<BufferPool>,
    /// bucket directory: first page of each bucket chain
    buckets: Vec<Vec<PageId>>,
    pub column: usize,
    pub entries: usize,
}

fn hash_field(f: &Field) -> u64 {
    let mut h = DefaultHasher::new();
    f.hash(&mut h);
    h.finish()
}

impl HashIndex {
    /// Builds an index on `column` of `heap` with `nbuckets` buckets.
    pub fn build(
        pool: Arc<BufferPool>,
        heap: &HeapFile,
        column: usize,
        nbuckets: usize,
    ) -> HashIndex {
        let mut ix = HashIndex {
            pool,
            buckets: (0..nbuckets).map(|_| Vec::new()).collect(),
            column,
            entries: 0,
        };
        let mut pending: Vec<(u64, Rid)> = Vec::new();
        heap.scan(|rid, row| {
            pending.push((hash_field(&row[column]), rid));
        });
        for (h, rid) in pending {
            ix.insert_hash(h, rid);
        }
        ix
    }

    /// Adds one entry (used by incremental loads).
    pub fn insert(&mut self, key: &Field, rid: Rid) {
        self.insert_hash(hash_field(key), rid);
    }

    fn insert_hash(&mut self, h: u64, rid: Rid) {
        let b = (h % self.buckets.len() as u64) as usize;
        let mut entry = [0u8; ENTRY];
        entry[0..8].copy_from_slice(&h.to_le_bytes());
        entry[8..12].copy_from_slice(&rid.page.to_le_bytes());
        entry[12..14].copy_from_slice(&rid.slot.to_le_bytes());

        if let Some(&tail) = self.buckets[b].last() {
            let pinned = self.pool.pin(tail);
            let ok = pinned.write(|pg| pg.insert(&entry).is_some());
            if ok {
                self.entries += 1;
                return;
            }
        }
        let fresh = self.pool.disk.allocate();
        self.buckets[b].push(fresh);
        let pinned = self.pool.pin(fresh);
        pinned
            .write(|pg| pg.insert(&entry))
            .expect("fresh bucket page accepts entry");
        self.entries += 1;
    }

    /// Probes the index: rids whose key hashes match (callers re-check the
    /// actual key after fetching, as any hash index must).
    pub fn probe(&self, key: &Field) -> Vec<Rid> {
        let h = hash_field(key);
        let b = (h % self.buckets.len() as u64) as usize;
        let mut out = Vec::new();
        for &pid in &self.buckets[b] {
            let pinned = self.pool.pin(pid);
            pinned.read(|pg| {
                for s in pg.live_slots() {
                    let e = pg.get(s);
                    let eh = u64::from_le_bytes(e[0..8].try_into().expect("entry"));
                    if eh == h {
                        out.push(Rid {
                            page: u32::from_le_bytes(e[8..12].try_into().expect("entry")),
                            slot: u16::from_le_bytes(e[12..14].try_into().expect("entry")),
                        });
                    }
                }
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Disk;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Arc::new(Disk::default()), 64))
    }

    #[test]
    fn build_and_probe() {
        let pool = pool();
        let mut hf = HeapFile::create(pool.clone());
        for i in 0..500i64 {
            hf.insert(&[Field::Int(i), Field::Int(i % 7)]);
        }
        let ix = HashIndex::build(pool, &hf, 0, 64);
        assert_eq!(ix.entries, 500);
        let rids = ix.probe(&Field::Int(123));
        // verify by fetching
        let hits: Vec<_> = rids
            .iter()
            .map(|&r| hf.fetch(r))
            .filter(|row| row[0] == Field::Int(123))
            .collect();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn probe_on_non_key_column() {
        let pool = pool();
        let mut hf = HeapFile::create(pool.clone());
        for i in 0..70i64 {
            hf.insert(&[Field::Int(i), Field::Int(i % 7)]);
        }
        let ix = HashIndex::build(pool, &hf, 1, 8);
        let rids = ix.probe(&Field::Int(3));
        let hits: Vec<_> = rids
            .iter()
            .map(|&r| hf.fetch(r))
            .filter(|row| row[1] == Field::Int(3))
            .collect();
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn string_keys() {
        let pool = pool();
        let mut hf = HeapFile::create(pool.clone());
        hf.insert(&[Field::Str("alice".into()), Field::Int(1)]);
        hf.insert(&[Field::Str("bob".into()), Field::Int(2)]);
        let ix = HashIndex::build(pool, &hf, 0, 4);
        let rids = ix.probe(&Field::Str("bob".into()));
        assert!(rids.iter().any(|&r| hf.fetch(r)[1] == Field::Int(2)));
    }
}
