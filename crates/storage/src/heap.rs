//! Heap files and tuple encoding.
//!
//! A heap file is a sequence of slotted pages accessed through the buffer
//! pool. Tuples are rows of [`Field`]s (integers or short strings) with a
//! compact byte encoding.

use crate::buffer::{BufferPool, PageId};
use std::sync::Arc;

/// A field value.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Field {
    Int(i64),
    Str(String),
}

impl Field {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Field::Int(i) => {
                out.push(0);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Field::Str(s) => {
                out.push(1);
                let b = s.as_bytes();
                out.extend_from_slice(&(b.len() as u16).to_le_bytes());
                out.extend_from_slice(b);
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Field {
        let tag = buf[*pos];
        *pos += 1;
        match tag {
            0 => {
                let mut b = [0u8; 8];
                b.copy_from_slice(&buf[*pos..*pos + 8]);
                *pos += 8;
                Field::Int(i64::from_le_bytes(b))
            }
            1 => {
                let len = u16::from_le_bytes([buf[*pos], buf[*pos + 1]]) as usize;
                *pos += 2;
                let s = String::from_utf8_lossy(&buf[*pos..*pos + len]).into_owned();
                *pos += len;
                Field::Str(s)
            }
            _ => unreachable!("bad field tag"),
        }
    }
}

/// Encodes a row.
pub fn encode_row(fields: &[Field]) -> Vec<u8> {
    let mut out = Vec::with_capacity(fields.len() * 10);
    out.extend_from_slice(&(fields.len() as u16).to_le_bytes());
    for f in fields {
        f.encode(&mut out);
    }
    out
}

/// Decodes a row.
pub fn decode_row(buf: &[u8]) -> Vec<Field> {
    let n = u16::from_le_bytes([buf[0], buf[1]]) as usize;
    let mut pos = 2usize;
    (0..n).map(|_| Field::decode(buf, &mut pos)).collect()
}

/// A record id: page + slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Rid {
    pub page: PageId,
    pub slot: u16,
}

/// A heap file: ordered list of page ids, insertion at the tail page.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    pub pages: Vec<PageId>,
    pub tuple_count: usize,
}

impl HeapFile {
    pub fn create(pool: Arc<BufferPool>) -> HeapFile {
        let first = pool.disk.allocate();
        HeapFile {
            pool,
            pages: vec![first],
            tuple_count: 0,
        }
    }

    /// Inserts a row, allocating a new page when the tail is full.
    pub fn insert(&mut self, fields: &[Field]) -> Rid {
        let bytes = encode_row(fields);
        let tail = *self.pages.last().expect("heap file has pages");
        let slot = {
            let pinned = self.pool.pin(tail);
            pinned.write(|pg| pg.insert(&bytes))
        };
        match slot {
            Some(s) => {
                self.tuple_count += 1;
                Rid {
                    page: tail,
                    slot: s,
                }
            }
            None => {
                let fresh = self.pool.disk.allocate();
                self.pages.push(fresh);
                let pinned = self.pool.pin(fresh);
                let s = pinned
                    .write(|pg| pg.insert(&bytes))
                    .expect("fresh page accepts tuple");
                self.tuple_count += 1;
                Rid {
                    page: fresh,
                    slot: s,
                }
            }
        }
    }

    /// Fetches a row by rid (a pin + latch + slot decode per access).
    pub fn fetch(&self, rid: Rid) -> Vec<Field> {
        let pinned = self.pool.pin(rid.page);
        pinned.read(|pg| decode_row(pg.get(rid.slot)))
    }

    /// Full scan, calling `f` for each live row.
    pub fn scan(&self, mut f: impl FnMut(Rid, Vec<Field>)) {
        for &pid in &self.pages {
            let pinned = self.pool.pin(pid);
            let rows: Vec<(u16, Vec<Field>)> = pinned.read(|pg| {
                pg.live_slots()
                    .map(|s| (s, decode_row(pg.get(s))))
                    .collect()
            });
            for (slot, row) in rows {
                f(Rid { page: pid, slot }, row);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Disk;

    fn pool(frames: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Arc::new(Disk::default()), frames))
    }

    #[test]
    fn row_roundtrip() {
        let row = vec![Field::Int(42), Field::Str("hello".into()), Field::Int(-1)];
        assert_eq!(decode_row(&encode_row(&row)), row);
    }

    #[test]
    fn insert_fetch_scan() {
        let mut hf = HeapFile::create(pool(8));
        let mut rids = Vec::new();
        for i in 0..1000i64 {
            rids.push(hf.insert(&[Field::Int(i), Field::Int(i * 2)]));
        }
        assert_eq!(hf.fetch(rids[500]), vec![Field::Int(500), Field::Int(1000)]);
        let mut n = 0;
        hf.scan(|_, row| {
            assert_eq!(row.len(), 2);
            n += 1;
        });
        assert_eq!(n, 1000);
        assert!(hf.pages.len() > 1, "spilled to multiple pages");
    }

    #[test]
    fn survives_tiny_buffer_pool() {
        // pool far smaller than the file: every access faults
        let mut hf = HeapFile::create(pool(2));
        for i in 0..2000i64 {
            hf.insert(&[Field::Int(i)]);
        }
        let mut sum = 0i64;
        hf.scan(|_, row| {
            if let Field::Int(i) = row[0] {
                sum += i;
            }
        });
        assert_eq!(sum, (0..2000).sum::<i64>());
    }
}
