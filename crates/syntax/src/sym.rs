//! Symbol interning.
//!
//! Every atom and functor name in a program is interned once into a
//! [`SymbolTable`], yielding a dense `u32` id ([`Sym`]). The engine, the
//! bottom-up evaluator and the storage layer all share one table so that
//! symbol identity is a single integer compare everywhere, as in the WAM's
//! atom table.

use std::collections::HashMap;
use std::fmt;

/// An interned symbol (atom or functor name).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// Raw index into the symbol table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.0)
    }
}

macro_rules! well_known {
    ($($konst:ident = $idx:expr => $text:expr;)*) => {
        /// Symbols interned at fixed indices in every table, so engine code
        /// can refer to them without a lookup.
        pub mod well_known {
            use super::Sym;
            $(pub const $konst: Sym = Sym($idx);)*
            pub(super) const ALL: &[(&str, Sym)] = &[$(($text, $konst)),*];
        }
    };
}

well_known! {
    NIL = 0 => "[]";
    DOT = 1 => ".";
    COMMA = 2 => ",";
    NECK = 3 => ":-";
    APPLY = 4 => "apply";
    TRUE = 5 => "true";
    FAIL = 6 => "fail";
    CUT = 7 => "!";
    SEMICOLON = 8 => ";";
    ARROW = 9 => "->";
    NAF = 10 => "\\+";
    TNOT = 11 => "tnot";
    E_TNOT = 12 => "e_tnot";
    TCUT = 13 => "tcut";
    EQ = 14 => "=";
    IS = 15 => "is";
    LT = 16 => "<";
    GT = 17 => ">";
    LE = 18 => "=<";
    GE = 19 => ">=";
    NE_ARITH = 20 => "=\\=";
    EQ_ARITH = 21 => "=:=";
    PLUS = 22 => "+";
    MINUS = 23 => "-";
    STAR = 24 => "*";
    SLASH = 25 => "/";
    MOD = 26 => "mod";
    REM = 27 => "rem";
    SLASH_SLASH = 28 => "//";
    EQ_EQ = 29 => "==";
    NOT_EQ_EQ = 30 => "\\==";
    UNIV = 31 => "=..";
    CALL = 32 => "call";
    TABLE = 33 => "table";
    TABLE_ALL = 34 => "table_all";
    HILOG = 35 => "hilog";
    INDEX = 36 => "index";
    OP = 37 => "op";
    DYNAMIC = 38 => "dynamic";
    FINDALL = 39 => "findall";
    TFINDALL = 40 => "tfindall";
    BAGOF = 41 => "bagof";
    SETOF = 42 => "setof";
    ASSERT = 43 => "assert";
    ASSERTZ = 44 => "assertz";
    ASSERTA = 45 => "asserta";
    RETRACT = 46 => "retract";
    VAR = 47 => "var";
    NONVAR = 48 => "nonvar";
    ATOM = 49 => "atom";
    NUMBER = 50 => "number";
    ATOMIC = 51 => "atomic";
    COMPOUND = 52 => "compound";
    FUNCTOR = 53 => "functor";
    ARG = 54 => "arg";
    BETWEEN = 55 => "between";
    FIRST_STRING = 56 => "first_string_index";
    CMP_LT = 57 => "@<";
    CMP_GT = 58 => "@>";
    CMP_LE = 59 => "@=<";
    CMP_GE = 60 => "@>=";
    MIN = 61 => "min";
    MAX = 62 => "max";
    ABS = 63 => "abs";
    WRITE = 64 => "write";
    NL = 65 => "nl";
    HALT = 66 => "halt";
    CURLY = 67 => "{}";
    EDB = 68 => "edb";
    NOT = 69 => "not";
    ABOLISH_TABLES = 70 => "abolish_all_tables";
    LENGTH = 71 => "length";
    APPEND = 72 => "append";
    COPY_TERM = 73 => "copy_term";
    VBAR = 74 => "|";
}

/// Interning table mapping strings to dense [`Sym`] ids.
pub struct SymbolTable {
    names: Vec<Box<str>>,
    map: HashMap<Box<str>, Sym>,
}

impl SymbolTable {
    /// Creates a table pre-populated with the [`well_known`] symbols.
    pub fn new() -> Self {
        let mut t = SymbolTable {
            names: Vec::with_capacity(256),
            map: HashMap::with_capacity(256),
        };
        for (i, (text, sym)) in well_known::ALL.iter().enumerate() {
            debug_assert_eq!(sym.0 as usize, i, "well-known symbol order");
            let interned = t.intern(text);
            debug_assert_eq!(interned, *sym);
        }
        t
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.map.get(name) {
            return s;
        }
        let s = Sym(self.names.len() as u32);
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.map.insert(boxed, s);
        s
    }

    /// Looks up an already-interned symbol without inserting.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.map.get(name).copied()
    }

    /// The text of symbol `s`.
    pub fn name(&self, s: Sym) -> &str {
        &self.names[s.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no symbols are interned (never the case in practice, since
    /// well-known symbols are pre-interned).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Interns `base_N` for a generated symbol, guaranteed unused so far.
    pub fn gensym(&mut self, base: &str) -> Sym {
        let mut n = self.names.len();
        loop {
            let candidate = format!("{base}${n}");
            if self.map.contains_key(candidate.as_str()) {
                n += 1;
            } else {
                return self.intern(&candidate);
            }
        }
    }
}

impl Default for SymbolTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("foo");
        let b = t.intern("foo");
        assert_eq!(a, b);
        assert_eq!(t.name(a), "foo");
    }

    #[test]
    fn well_known_symbols_have_fixed_ids() {
        let t = SymbolTable::new();
        assert_eq!(t.name(well_known::NIL), "[]");
        assert_eq!(t.name(well_known::APPLY), "apply");
        assert_eq!(t.name(well_known::NECK), ":-");
        assert_eq!(t.lookup("tnot"), Some(well_known::TNOT));
    }

    #[test]
    fn distinct_names_distinct_syms() {
        let mut t = SymbolTable::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        assert_ne!(a, b);
    }

    #[test]
    fn gensym_is_fresh() {
        let mut t = SymbolTable::new();
        let g1 = t.gensym("tmp");
        let g2 = t.gensym("tmp");
        assert_ne!(g1, g2);
    }
}
