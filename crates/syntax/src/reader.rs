//! Program readers.
//!
//! [`ProgramReader`] is the general reader: full operator-precedence parsing
//! of arbitrary HiLog terms, with `op/3` and `hilog/1` directives applied
//! incrementally (paper §4.6 calls this the "general reader" and notes it is
//! the slow path). [`formatted_read`] is the fast path for highly structured
//! data files: a delimiter-split reader that needs no term parser and
//! corresponds to XSB's formatted read used for bulk loads.

use crate::hilog::HilogEncoder;
use crate::ops::{OpTable, OpType};
use crate::parser::{ItemStream, ParseError};
use crate::sym::{well_known, SymbolTable};
use crate::term::{Clause, Item, Term};

/// A directive recognized and *consumed* by the reader itself; everything
/// else is passed through for the engine to interpret.
#[derive(Debug, Clone, PartialEq)]
pub enum ReadItem {
    Clause(Clause),
    Directive(Term),
}

/// General reader: parses a whole source text, maintaining the operator
/// table and HiLog declarations as directives are encountered, and encoding
/// every clause into first-order form.
pub struct ProgramReader {
    pub ops: OpTable,
    pub hilog: HilogEncoder,
}

impl ProgramReader {
    pub fn new() -> Self {
        ProgramReader {
            ops: OpTable::standard(),
            hilog: HilogEncoder::new(),
        }
    }

    /// Reads all items from `src`. `op/3` and `hilog/1` directives take
    /// effect immediately and are *also* returned (so callers can track
    /// them); clauses come back HiLog-encoded.
    pub fn read(&mut self, src: &str, syms: &mut SymbolTable) -> Result<Vec<ReadItem>, ParseError> {
        let mut stream = ItemStream::new(src)?;
        let mut out = Vec::new();
        while let Some(item) = stream.next_item(syms, &self.ops) {
            match item? {
                Item::Clause(c) => out.push(ReadItem::Clause(self.hilog.encode_clause(&c))),
                Item::Directive(d) => {
                    self.apply_directive(&d, syms);
                    out.push(ReadItem::Directive(d));
                }
            }
        }
        Ok(out)
    }

    fn apply_directive(&mut self, d: &Term, syms: &SymbolTable) {
        match d {
            // op(P, Type, Name) possibly with a list of names
            Term::Compound(f, args) if *f == well_known::OP && args.len() == 3 => {
                let (p, ty) = match (&args[0], &args[1]) {
                    (Term::Int(p), Term::Atom(t)) => match OpType::from_name(syms.name(*t)) {
                        Some(ty) => (*p as u32, ty),
                        None => return,
                    },
                    _ => return,
                };
                let mut names = Vec::new();
                collect_atoms(&args[2], &mut names);
                for n in names {
                    self.ops.define(p, ty, syms.name(n));
                }
            }
            // hilog h1, h2, ... (comma operator) or hilog(h)
            Term::Compound(f, args) if *f == well_known::HILOG => {
                let mut names = Vec::new();
                for a in args {
                    collect_atoms(a, &mut names);
                }
                for n in names {
                    self.hilog.declare(n);
                }
            }
            _ => {}
        }
    }
}

impl Default for ProgramReader {
    fn default() -> Self {
        Self::new()
    }
}

fn collect_atoms(t: &Term, out: &mut Vec<crate::sym::Sym>) {
    match t {
        Term::Atom(s) => out.push(*s),
        Term::Compound(f, args) if *f == well_known::COMMA => {
            for a in args {
                collect_atoms(a, out);
            }
        }
        Term::Compound(f, args) if *f == well_known::DOT && args.len() == 2 => {
            collect_atoms(&args[0], out);
            collect_atoms(&args[1], out);
        }
        _ => {}
    }
}

/// One field of a formatted-read schema.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldKind {
    /// Interned as an atom.
    Atom,
    /// Parsed as an i64.
    Int,
}

/// Formatted read (paper §4.6): reads a delimiter-separated line into a
/// fact `pred(f1,…,fn)` without invoking the term parser. Returns `None`
/// for blank lines.
///
/// This is the fast bulk-load path: "XSB provides a formatted read, which
/// allows it to read and assert a fact in about a millisecond on a Sparc2".
pub fn formatted_read(
    line: &str,
    pred: crate::sym::Sym,
    schema: &[FieldKind],
    delim: char,
    syms: &mut SymbolTable,
) -> Result<Option<Term>, String> {
    let line = line.trim_end_matches(['\r', '\n']);
    if line.is_empty() {
        return Ok(None);
    }
    let mut args = Vec::with_capacity(schema.len());
    let mut fields = line.split(delim);
    for (i, kind) in schema.iter().enumerate() {
        let field = fields
            .next()
            .ok_or_else(|| format!("line has fewer than {} fields: {line:?}", i + 1))?;
        args.push(match kind {
            FieldKind::Int => Term::Int(
                field
                    .trim()
                    .parse::<i64>()
                    .map_err(|e| format!("field {}: {e}: {field:?}", i + 1))?,
            ),
            FieldKind::Atom => Term::Atom(syms.intern(field.trim())),
        });
    }
    if fields.next().is_some() {
        return Err(format!(
            "line has more than {} fields: {line:?}",
            schema.len()
        ));
    }
    Ok(Some(Term::compound(pred, args)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_applies_hilog_directive() {
        let mut syms = SymbolTable::new();
        let mut r = ProgramReader::new();
        let items = r
            .read(
                ":- hilog package1.\npackage1(health_ins, required).",
                &mut syms,
            )
            .unwrap();
        assert_eq!(items.len(), 2);
        match &items[1] {
            ReadItem::Clause(c) => {
                assert_eq!(c.head.functor().unwrap().0, well_known::APPLY);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reader_applies_op_directive() {
        let mut syms = SymbolTable::new();
        let mut r = ProgramReader::new();
        let items = r
            .read(":- op(700, xfx, ===).\nfact(a === b).", &mut syms)
            .unwrap();
        match &items[1] {
            ReadItem::Clause(c) => {
                let inner = &c.head.args()[0];
                let (f, n) = inner.functor().unwrap();
                assert_eq!((syms.name(f), n), ("===", 2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn formatted_read_parses_fields() {
        let mut syms = SymbolTable::new();
        let pred = syms.intern("emp");
        let t = formatted_read(
            "smith|10|engineering",
            pred,
            &[FieldKind::Atom, FieldKind::Int, FieldKind::Atom],
            '|',
            &mut syms,
        )
        .unwrap()
        .unwrap();
        assert_eq!(format!("{}", t.display(&syms)), "emp(smith,10,engineering)");
    }

    #[test]
    fn formatted_read_rejects_bad_arity() {
        let mut syms = SymbolTable::new();
        let pred = syms.intern("p");
        assert!(formatted_read("a|b", pred, &[FieldKind::Atom], '|', &mut syms).is_err());
        assert!(formatted_read(
            "a",
            pred,
            &[FieldKind::Atom, FieldKind::Int],
            '|',
            &mut syms
        )
        .is_err());
    }

    #[test]
    fn formatted_read_blank_line_is_none() {
        let mut syms = SymbolTable::new();
        let pred = syms.intern("p");
        assert_eq!(
            formatted_read("\n", pred, &[FieldKind::Atom], '|', &mut syms).unwrap(),
            None
        );
    }
}
