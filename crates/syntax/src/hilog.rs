//! HiLog → first-order encoding and compile-time specialization.
//!
//! Paper §4.1/§4.7: a HiLog term `T(t1,…,tn)` is encoded as
//! `apply(T', t1',…,tn')`; atoms declared `:- hilog h.` are also wrapped when
//! they appear in functor position (`h(a)` ⇒ `apply(h,a)`).
//!
//! The *specialization* optimization then rewrites `apply` clauses whose
//! functor argument has a known outer symbol — e.g. the paper's
//!
//! ```text
//! apply(path(G),X,Y) :- apply(G,X,Y).
//! ```
//!
//! becomes a bridge clause plus a specialized predicate:
//!
//! ```text
//! apply(path(G),X,Y)  :- 'apply$path'(G,X,Y).
//! 'apply$path'(G,X,Y) :- apply(G,X,Y).
//! ```
//!
//! and every *call* `apply(path(E),A,B)` with the known outer symbol is
//! rewritten to call `'apply$path'(E,A,B)` directly, so a HiLog predicate
//! runs "not much less efficient than if it were written in first-order
//! syntax".

use crate::sym::{well_known, Sym, SymbolTable};
use crate::term::{Clause, Term};
use std::collections::{HashMap, HashSet};

/// Tracks `:- hilog h.` declarations and performs the encoding.
#[derive(Default, Clone, Debug)]
pub struct HilogEncoder {
    hilog_atoms: HashSet<Sym>,
}

impl HilogEncoder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an atom declared with `:- hilog h.`
    pub fn declare(&mut self, s: Sym) {
        self.hilog_atoms.insert(s);
    }

    /// True if `s` was declared a HiLog symbol.
    pub fn is_hilog(&self, s: Sym) -> bool {
        self.hilog_atoms.contains(&s)
    }

    /// Encodes one term into first-order form. Idempotent on first-order
    /// terms that involve no HiLog syntax.
    pub fn encode(&self, t: &Term) -> Term {
        match t {
            Term::Var(_) | Term::Int(_) | Term::Atom(_) => t.clone(),
            Term::Compound(f, args) => {
                let enc_args: Vec<Term> = args.iter().map(|a| self.encode(a)).collect();
                if self.is_hilog(*f) {
                    let mut v = Vec::with_capacity(enc_args.len() + 1);
                    v.push(Term::Atom(*f));
                    v.extend(enc_args);
                    Term::Compound(well_known::APPLY, v)
                } else {
                    Term::Compound(*f, enc_args)
                }
            }
            Term::HiLog(fun, args) => {
                let mut v = Vec::with_capacity(args.len() + 1);
                v.push(self.encode(fun));
                v.extend(args.iter().map(|a| self.encode(a)));
                Term::Compound(well_known::APPLY, v)
            }
        }
    }

    /// Encodes a clause: head and every body goal. Control constructs
    /// (`,`, `;`, `->`, `\+`, `tnot`, `e_tnot`, `call`, `findall`…) keep
    /// their outer functor — they are never HiLog applications themselves —
    /// while their goal arguments are encoded recursively, which
    /// [`Self::encode`] already guarantees since control functors are not
    /// declared hilog.
    pub fn encode_clause(&self, c: &Clause) -> Clause {
        Clause {
            head: self.encode(&c.head),
            body: c.body.iter().map(|g| self.encode(g)).collect(),
            var_names: c.var_names.clone(),
        }
    }
}

/// The specialization pass over an encoded program.
///
/// `clauses` is the full set of (already encoded) clauses of one module.
/// Returns the transformed clause list. Only `apply/N` clauses whose functor
/// argument is a compound with a constant outer symbol are specialized; the
/// generic clauses (variable or atomic functor argument) stay on `apply/N`,
/// preserving completeness for calls with unknown functors.
pub fn specialize(clauses: &[Clause], syms: &mut SymbolTable) -> Vec<Clause> {
    // 1. Find specializable groups: (outer symbol, inner arity, apply arity).
    type Key = (Sym, usize, usize);
    let mut groups: HashMap<Key, Vec<usize>> = HashMap::new();
    for (i, c) in clauses.iter().enumerate() {
        if let Some(key) = specializable_key(&c.head) {
            groups.entry(key).or_default().push(i);
        }
    }
    // Only specialize groups where *every* apply/N clause with that outer
    // symbol shape is specializable (they all are, by construction of the
    // key) — and allocate the specialized predicate names.
    let mut names: HashMap<Key, Sym> = HashMap::new();
    for key in groups.keys() {
        let base = format!("apply${}", syms.name(key.0));
        let s = syms.intern(&base);
        names.insert(*key, s);
    }

    let mut out: Vec<Clause> = Vec::with_capacity(clauses.len() + names.len());
    let mut bridged: HashSet<Key> = HashSet::new();

    for c in clauses.iter() {
        let key = specializable_key(&c.head);
        match key {
            Some(k) if groups.contains_key(&k) => {
                let spec_name = names[&k];
                // Emit the bridge once per group, at first occurrence, so
                // generic `apply` calls still reach the specialized code.
                if bridged.insert(k) {
                    out.push(make_bridge(k, spec_name, c));
                }
                // The specialized clause: flatten functor args ++ outer args.
                let mut spec = c.clone();
                spec.head = flatten_head(&c.head, spec_name);
                spec.body = c.body.iter().map(|g| rewrite_calls(g, &names)).collect();
                out.push(spec);
            }
            _ => {
                let mut plain = c.clone();
                plain.body = c.body.iter().map(|g| rewrite_calls(g, &names)).collect();
                out.push(plain);
            }
        }
    }
    out
}

/// `apply(f(T1..Tk), A1..An)` → key (f, k, n); `None` otherwise.
fn specializable_key(head: &Term) -> Option<(Sym, usize, usize)> {
    match head {
        Term::Compound(ap, args) if *ap == well_known::APPLY && !args.is_empty() => {
            match &args[0] {
                Term::Compound(f, inner) if *f != well_known::APPLY => {
                    Some((*f, inner.len(), args.len() - 1))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Builds `apply(f(V1..Vk),W1..Wn) :- 'apply$f'(V1..Vk,W1..Wn).` with fresh
/// variables (numbered from 0 since the bridge is its own clause).
fn make_bridge((f, k, n): (Sym, usize, usize), spec: Sym, _template: &Clause) -> Clause {
    let inner: Vec<Term> = (0..k as u32).map(Term::Var).collect();
    let outer: Vec<Term> = (k as u32..(k + n) as u32).map(Term::Var).collect();
    let mut head_args = Vec::with_capacity(n + 1);
    head_args.push(Term::Compound(f, inner.clone()));
    head_args.extend(outer.clone());
    let mut body_args = inner;
    body_args.extend(outer);
    let var_names = (0..(k + n)).map(|i| format!("_B{i}")).collect();
    Clause {
        head: Term::Compound(well_known::APPLY, head_args),
        body: vec![Term::Compound(spec, body_args)],
        var_names,
    }
}

/// `apply(f(T..), A..)` → `'apply$f'(T.., A..)`.
fn flatten_head(head: &Term, spec: Sym) -> Term {
    match head {
        Term::Compound(ap, args) if *ap == well_known::APPLY => match &args[0] {
            Term::Compound(_, inner) => {
                let mut v = Vec::with_capacity(inner.len() + args.len() - 1);
                v.extend(inner.iter().cloned());
                v.extend(args[1..].iter().cloned());
                Term::Compound(spec, v)
            }
            _ => head.clone(),
        },
        _ => head.clone(),
    }
}

/// Rewrites call sites: any `apply(f(..),..)` subterm *in goal position*
/// whose key has a specialization becomes a direct call. Applied recursively
/// through control constructs.
fn rewrite_calls(goal: &Term, names: &HashMap<(Sym, usize, usize), Sym>) -> Term {
    match goal {
        Term::Compound(f, args)
            if (*f == well_known::COMMA
                || *f == well_known::SEMICOLON
                || *f == well_known::ARROW)
                && args.len() == 2 =>
        {
            Term::Compound(
                *f,
                vec![
                    rewrite_calls(&args[0], names),
                    rewrite_calls(&args[1], names),
                ],
            )
        }
        Term::Compound(f, args)
            if (*f == well_known::NAF || *f == well_known::TNOT || *f == well_known::E_TNOT)
                && args.len() == 1 =>
        {
            Term::Compound(*f, vec![rewrite_calls(&args[0], names)])
        }
        Term::Compound(ap, args) if *ap == well_known::APPLY && !args.is_empty() => {
            if let Term::Compound(f, inner) = &args[0] {
                let key = (*f, inner.len(), args.len() - 1);
                if let Some(&spec) = names.get(&key) {
                    let mut v = Vec::with_capacity(inner.len() + args.len() - 1);
                    v.extend(inner.iter().cloned());
                    v.extend(args[1..].iter().cloned());
                    return Term::Compound(spec, v);
                }
            }
            goal.clone()
        }
        _ => goal.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpTable;
    use crate::parser::{parse_program, parse_term_str};
    use crate::term::Item;

    fn enc(src: &str, hilog: &[&str]) -> (Term, SymbolTable) {
        let mut syms = SymbolTable::new();
        let ops = OpTable::standard();
        let mut e = HilogEncoder::new();
        for h in hilog {
            let s = syms.intern(h);
            e.declare(s);
        }
        let t = parse_term_str(src, &mut syms, &ops).unwrap();
        let t = e.encode(&t);
        (t, syms)
    }

    #[test]
    fn encodes_variable_functor() {
        let (t, s) = enc("X(bob, Y)", &[]);
        assert_eq!(format!("{}", t.display(&s)), "apply(_0,bob,_1)");
    }

    #[test]
    fn encodes_declared_atom_functor() {
        // paper: after `:- hilog h.`, h(a) reads as apply(h,a)
        let (t, s) = enc("h(a)", &["h"]);
        assert_eq!(format!("{}", t.display(&s)), "apply(h,a)");
        // undeclared p stays first-order
        let (t2, s2) = enc("p(a)", &[]);
        assert_eq!(format!("{}", t2.display(&s2)), "p(a)");
    }

    #[test]
    fn encodes_nested_application() {
        let (t, s) = enc("path(G)(X, Y)", &[]);
        assert_eq!(format!("{}", t.display(&s)), "apply(path(_0),_1,_2)");
    }

    #[test]
    fn hilog_atom_in_argument_position_stays_constant() {
        let (t, s) = enc("benefits('John', package1)", &["package1"]);
        assert_eq!(format!("{}", t.display(&s)), "benefits('John',package1)");
    }

    #[test]
    fn specialization_of_path_example() {
        let mut syms = SymbolTable::new();
        let ops = OpTable::standard();
        let e = HilogEncoder::new();
        let src = r#"
            path(Graph)(X, Y) :- Graph(X, Y).
            path(Graph)(X, Y) :- path(Graph)(X,Z), Graph(Z, Y).
        "#;
        let items = parse_program(src, &mut syms, &ops).unwrap();
        let clauses: Vec<Clause> = items
            .into_iter()
            .map(|i| match i {
                Item::Clause(c) => e.encode_clause(&c),
                _ => panic!(),
            })
            .collect();
        let out = specialize(&clauses, &mut syms);
        // bridge + 2 specialized clauses
        assert_eq!(out.len(), 3);
        let spec = syms.lookup("apply$path").unwrap();
        // bridge: apply(path(V0),V1,V2) :- apply$path(V0,V1,V2)
        assert_eq!(out[0].head.functor().unwrap().0, well_known::APPLY);
        assert_eq!(out[0].body[0].functor().unwrap(), (spec, 3));
        // specialized recursive clause's self-call is rewritten
        assert_eq!(out[2].head.functor().unwrap(), (spec, 3));
        assert_eq!(out[2].body[0].functor().unwrap(), (spec, 3));
        // the Graph(Z,Y) call stays generic apply/3
        assert_eq!(out[2].body[1].functor().unwrap().0, well_known::APPLY);
    }

    #[test]
    fn generic_apply_clauses_not_specialized() {
        let mut syms = SymbolTable::new();
        let ops = OpTable::standard();
        let e = HilogEncoder::new();
        let mut enc = e.clone();
        let p = syms.intern("p");
        enc.declare(p);
        let src = "p(g(a),f(1)).\np(X,Y) :- q(X,Y).";
        let items = parse_program(src, &mut syms, &ops).unwrap();
        let clauses: Vec<Clause> = items
            .into_iter()
            .map(|i| match i {
                Item::Clause(c) => enc.encode_clause(&c),
                _ => panic!(),
            })
            .collect();
        // heads are apply(p,...) with atomic functor arg -> not specializable
        let out = specialize(&clauses, &mut syms);
        assert_eq!(out.len(), 2);
        assert!(out
            .iter()
            .all(|c| c.head.functor().unwrap().0 == well_known::APPLY));
    }

    #[test]
    fn encoding_is_idempotent_on_first_order() {
        let (t, s) = enc("foo(bar, baz(1), [a,b])", &[]);
        assert_eq!(format!("{}", t.display(&s)), "foo(bar,baz(1),[a,b])");
    }
}
