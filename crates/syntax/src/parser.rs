//! Operator-precedence parser for Prolog/HiLog clauses.
//!
//! Produces [`Term`]s; HiLog applications (`X(1)`, `f(a)(b,c)`) parse into
//! [`Term::HiLog`] nodes. The HiLog → first-order `apply` encoding is a
//! separate pass in [`crate::hilog`], so the AST here mirrors the source.

use crate::lexer::{tokenize, LexError, Spanned, Token};
use crate::ops::{OpTable, OpType};
use crate::sym::{well_known, SymbolTable};
use crate::term::{Clause, Item, Term};
use std::collections::HashMap;
use std::fmt;

/// Parse error with byte offset.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            offset: e.offset,
        }
    }
}

struct Parser<'a, 't> {
    tokens: &'t [Spanned],
    pos: usize,
    syms: &'a mut SymbolTable,
    ops: &'a OpTable,
    vars: HashMap<String, u32>,
    var_names: Vec<String>,
}

impl<'a, 't> Parser<'a, 't> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|s| &s.token)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|s| s.offset)
            .unwrap_or(usize::MAX)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(got) if got == t => {
                self.pos += 1;
                Ok(())
            }
            got => Err(self.err(format!("expected {t}, found {}", fmt_opt(got)))),
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            message,
            offset: self.offset(),
        }
    }

    fn var_id(&mut self, name: &str) -> u32 {
        if name == "_" {
            let id = self.var_names.len() as u32;
            self.var_names.push("_".to_string());
            return id;
        }
        if let Some(&id) = self.vars.get(name) {
            return id;
        }
        let id = self.var_names.len() as u32;
        self.vars.insert(name.to_string(), id);
        self.var_names.push(name.to_string());
        id
    }

    fn reset_clause_vars(&mut self) {
        self.vars.clear();
        self.var_names.clear();
    }

    /// Parses one term with priority at most `max_prec`. Returns the term
    /// and its priority (0 for non-operator terms).
    fn term(&mut self, max_prec: u32) -> Result<(Term, u32), ParseError> {
        let (mut left, mut lprec) = self.primary_or_prefix(max_prec)?;
        loop {
            let (name, is_comma, is_bar) = match self.peek() {
                Some(Token::Atom(a)) => (a.clone(), false, false),
                Some(Token::Comma) => (",".to_string(), true, false),
                Some(Token::Bar) => ("|".to_string(), false, true),
                _ => break,
            };
            // `|` used as an infix is read as `;` at priority 1100
            let (lookup, render): (&str, &str) = if is_bar { (";", ";") } else { (&name, &name) };
            let def = match self.ops.infix(lookup) {
                Some(d) => d,
                None => break,
            };
            if is_bar && max_prec < 1100 {
                break;
            }
            if def.priority > max_prec {
                break;
            }
            let (left_max, right_max) = match def.ty {
                OpType::Xfx => (def.priority - 1, def.priority - 1),
                OpType::Xfy => (def.priority - 1, def.priority),
                OpType::Yfx => (def.priority, def.priority - 1),
                _ => unreachable!("infix table holds only infix types"),
            };
            if lprec > left_max {
                break;
            }
            self.pos += 1;
            let (right, _) = self.term(right_max)?;
            let sym = self.syms.intern(render);
            let _ = is_comma;
            left = Term::Compound(sym, vec![left, right]);
            lprec = def.priority;
        }
        Ok((left, lprec))
    }

    /// True when the current token could begin a term (operand position).
    fn at_term_start(&self) -> bool {
        matches!(
            self.peek(),
            Some(
                Token::Atom(_)
                    | Token::Var(_)
                    | Token::Int(_)
                    | Token::OpenParen
                    | Token::FunctorParen
                    | Token::OpenBracket
                    | Token::OpenBrace
            )
        )
    }

    fn primary_or_prefix(&mut self, max_prec: u32) -> Result<(Term, u32), ParseError> {
        if let Some(Token::Atom(name)) = self.peek() {
            let name = name.clone();
            // An atom immediately followed by `(` is a functor, never an op.
            if self.peek2() != Some(&Token::FunctorParen) {
                if let Some(def) = self.ops.prefix(&name) {
                    // negative integer literal: `- 3` / `-3`
                    if name == "-" {
                        if let Some(Token::Int(i)) = self.peek2() {
                            let i = *i;
                            self.pos += 2;
                            return self.apply_chain(Term::Int(-i)).map(|t| (t, 0));
                        }
                    }
                    // Only treat as prefix op if an operand follows and
                    // the operand token is not itself an infix operator
                    // in operand-impossible position.
                    let operand_follows = {
                        let save = self.pos;
                        self.pos += 1;
                        let ok = self.at_term_start() && !self.next_is_infix_only();
                        self.pos = save;
                        ok
                    };
                    if operand_follows && def.priority <= max_prec {
                        self.pos += 1;
                        let arg_max = match def.ty {
                            OpType::Fy => def.priority,
                            OpType::Fx => def.priority - 1,
                            _ => unreachable!(),
                        };
                        let (arg, _) = self.term(arg_max)?;
                        let sym = self.syms.intern(&name);
                        return Ok((Term::Compound(sym, vec![arg]), def.priority));
                    }
                }
            }
        }
        let t = self.primary()?;
        Ok((t, 0))
    }

    /// True when the next token is an atom that is *only* an infix/postfix
    /// operator (so it cannot start a term).
    fn next_is_infix_only(&self) -> bool {
        if let Some(Token::Atom(a)) = self.peek() {
            if self.peek2() == Some(&Token::FunctorParen) {
                return false;
            }
            return (self.ops.infix(a).is_some() || self.ops.postfix(a).is_some())
                && self.ops.prefix(a).is_none();
        }
        false
    }

    fn primary(&mut self) -> Result<Term, ParseError> {
        let tok = self
            .bump()
            .ok_or_else(|| self.err("unexpected end of input".into()))?;
        let base = match tok {
            Token::Int(i) => Term::Int(i),
            Token::Var(name) => Term::Var(self.var_id(&name)),
            Token::Atom(name) => {
                let sym = self.syms.intern(&name);
                if self.peek() == Some(&Token::FunctorParen) {
                    self.pos += 1;
                    let args = self.arg_list()?;
                    Term::compound(sym, args)
                } else {
                    Term::Atom(sym)
                }
            }
            Token::OpenParen | Token::FunctorParen => {
                let (t, _) = self.term(1200)?;
                self.expect(&Token::CloseParen)?;
                t
            }
            Token::OpenBracket => {
                let mut items = Vec::new();
                let (first, _) = self.term(999)?;
                items.push(first);
                loop {
                    match self.peek() {
                        Some(Token::Comma) => {
                            self.pos += 1;
                            let (t, _) = self.term(999)?;
                            items.push(t);
                        }
                        Some(Token::Bar) => {
                            self.pos += 1;
                            let (tail, _) = self.term(999)?;
                            self.expect(&Token::CloseBracket)?;
                            return self.apply_chain(Term::list(items, tail));
                        }
                        Some(Token::CloseBracket) => {
                            self.pos += 1;
                            return self.apply_chain(Term::list(items, Term::nil()));
                        }
                        got => {
                            let got = fmt_opt(got);
                            return Err(self.err(format!("expected , | or ] in list, found {got}")));
                        }
                    }
                }
            }
            Token::OpenBrace => {
                let (t, _) = self.term(1200)?;
                self.expect(&Token::CloseBrace)?;
                Term::Compound(well_known::CURLY, vec![t])
            }
            other => return Err(self.err(format!("unexpected token {other}"))),
        };
        self.apply_chain(base)
    }

    /// Consumes any HiLog application chain after a complete term:
    /// `f(a)(b)(c)` or `X(1,2)`.
    fn apply_chain(&mut self, mut base: Term) -> Result<Term, ParseError> {
        while self.peek() == Some(&Token::FunctorParen) {
            self.pos += 1;
            let args = self.arg_list()?;
            base = match base {
                // `f(a)` directly applied was already folded into Compound
                // by `primary`; any further application is HiLog.
                Term::Atom(s) => Term::compound(s, args),
                other => Term::HiLog(Box::new(other), args),
            };
        }
        Ok(base)
    }

    /// Parses `t1, …, tn )` — arguments at priority 999.
    fn arg_list(&mut self) -> Result<Vec<Term>, ParseError> {
        let mut args = Vec::new();
        loop {
            let (t, _) = self.term(999)?;
            args.push(t);
            match self.bump() {
                Some(Token::Comma) => continue,
                Some(Token::CloseParen) => break,
                got => {
                    return Err(self.err(format!(
                        "expected , or ) in argument list, found {}",
                        got.map(|t| t.to_string()).unwrap_or_else(|| "eof".into())
                    )))
                }
            }
        }
        Ok(args)
    }

    /// Parses a full clause up to `.` and classifies it.
    fn item(&mut self) -> Result<Item, ParseError> {
        self.reset_clause_vars();
        let (t, _) = self.term(1200)?;
        self.expect(&Token::End)?;
        let var_names = std::mem::take(&mut self.var_names);
        Ok(match t {
            Term::Compound(s, mut args) if s == well_known::NECK && args.len() == 1 => {
                Item::Directive(args.pop().expect("len checked"))
            }
            Term::Compound(s, mut args) if s == well_known::NECK && args.len() == 2 => {
                let body = args.pop().expect("len checked");
                let head = args.pop().expect("len checked");
                let body = body.conjuncts().into_iter().cloned().collect();
                Item::Clause(Clause {
                    head,
                    body,
                    var_names,
                })
            }
            head => Item::Clause(Clause {
                head,
                body: Vec::new(),
                var_names,
            }),
        })
    }
}

fn fmt_opt(t: Option<&Token>) -> String {
    t.map(|t| t.to_string()).unwrap_or_else(|| "eof".into())
}

/// Parses a complete program (clauses and directives).
pub fn parse_program(
    src: &str,
    syms: &mut SymbolTable,
    ops: &OpTable,
) -> Result<Vec<Item>, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens: &tokens,
        pos: 0,
        syms,
        ops,
        vars: HashMap::new(),
        var_names: Vec::new(),
    };
    let mut items = Vec::new();
    while p.peek().is_some() {
        items.push(p.item()?);
    }
    Ok(items)
}

/// Parses a single term (no trailing dot required).
pub fn parse_term_str(
    src: &str,
    syms: &mut SymbolTable,
    ops: &OpTable,
) -> Result<Term, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens: &tokens,
        pos: 0,
        syms,
        ops,
        vars: HashMap::new(),
        var_names: Vec::new(),
    };
    let (t, _) = p.term(1200)?;
    match p.peek() {
        None | Some(Token::End) => Ok(t),
        got => {
            let got = fmt_opt(got);
            Err(p.err(format!("trailing input after term: {got}")))
        }
    }
}

/// A parsed query: goal list plus the source names of its variables, used by
/// the engine's solution reporting.
#[derive(Clone, Debug)]
pub struct Query {
    pub goals: Vec<Term>,
    pub var_names: Vec<String>,
}

/// Parses a query such as `path(1,X), X > 3` (trailing `.` optional).
pub fn parse_query(src: &str, syms: &mut SymbolTable, ops: &OpTable) -> Result<Query, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens: &tokens,
        pos: 0,
        syms,
        ops,
        vars: HashMap::new(),
        var_names: Vec::new(),
    };
    let (t, _) = p.term(1200)?;
    match p.peek() {
        None | Some(Token::End) => {}
        got => {
            let got = fmt_opt(got);
            return Err(p.err(format!("trailing input after query: {got}")));
        }
    }
    Ok(Query {
        goals: t.conjuncts().into_iter().cloned().collect(),
        var_names: p.var_names,
    })
}

/// Item-at-a-time parser, so that directives (e.g. `op/3`, `hilog/1`) can
/// influence how the *rest* of the file parses. Used by
/// [`crate::reader::ProgramReader`].
pub struct ItemStream {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl ItemStream {
    /// Tokenizes `src` for item-at-a-time parsing.
    pub fn new(src: &str) -> Result<ItemStream, ParseError> {
        Ok(ItemStream {
            tokens: tokenize(src)?,
            pos: 0,
        })
    }

    /// Parses the next clause or directive, or `None` at end of input.
    /// After an error the stream is exhausted (no resynchronization).
    pub fn next_item(
        &mut self,
        syms: &mut SymbolTable,
        ops: &OpTable,
    ) -> Option<Result<Item, ParseError>> {
        if self.pos >= self.tokens.len() {
            return None;
        }
        let mut p = Parser {
            tokens: &self.tokens,
            pos: self.pos,
            syms,
            ops,
            vars: HashMap::new(),
            var_names: Vec::new(),
        };
        let r = p.item();
        self.pos = if r.is_ok() { p.pos } else { self.tokens.len() };
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::well_known as wk;

    fn setup() -> (SymbolTable, OpTable) {
        (SymbolTable::new(), OpTable::standard())
    }

    fn parse1(src: &str) -> (Term, SymbolTable) {
        let (mut s, o) = setup();
        let t = parse_term_str(src, &mut s, &o).unwrap();
        (t, s)
    }

    #[test]
    fn parses_fact_structure() {
        let (t, s) = parse1("edge(1,2)");
        assert_eq!(
            t,
            Term::Compound(s.lookup("edge").unwrap(), vec![Term::Int(1), Term::Int(2)])
        );
    }

    #[test]
    fn parses_rule_with_neck() {
        let (mut s, o) = setup();
        let items = parse_program("path(X,Y) :- edge(X,Y).", &mut s, &o).unwrap();
        match &items[0] {
            Item::Clause(c) => {
                assert_eq!(c.body.len(), 1);
                assert_eq!(c.var_names, vec!["X", "Y"]);
            }
            other => panic!("expected clause, got {other:?}"),
        }
    }

    #[test]
    fn parses_multi_goal_body() {
        let (mut s, o) = setup();
        let items = parse_program("p(X,Y) :- q(X,Z), r(Z,Y), s.", &mut s, &o).unwrap();
        match &items[0] {
            Item::Clause(c) => assert_eq!(c.body.len(), 3),
            other => panic!("expected clause, got {other:?}"),
        }
    }

    #[test]
    fn parses_directive() {
        let (mut s, o) = setup();
        let items = parse_program(":- table path/2.", &mut s, &o).unwrap();
        match &items[0] {
            Item::Directive(d) => {
                let (f, n) = d.functor().unwrap();
                assert_eq!((s.name(f), n), ("table", 1));
            }
            other => panic!("expected directive, got {other:?}"),
        }
    }

    #[test]
    fn operator_precedence_arithmetic() {
        let (t, s) = parse1("X is 1 + 2 * 3");
        // is(X, +(1, *(2,3)))
        match t {
            Term::Compound(is, args) => {
                assert_eq!(s.name(is), "is");
                match &args[1] {
                    Term::Compound(plus, a2) => {
                        assert_eq!(s.name(*plus), "+");
                        assert!(matches!(&a2[1], Term::Compound(star, _) if s.name(*star) == "*"));
                    }
                    other => panic!("expected +, got {other:?}"),
                }
            }
            other => panic!("expected is/2, got {other:?}"),
        }
    }

    #[test]
    fn left_associativity_of_minus() {
        let (t, s) = parse1("1 - 2 - 3");
        // (1-2)-3
        match t {
            Term::Compound(m, args) => {
                assert_eq!(s.name(m), "-");
                assert_eq!(args[1], Term::Int(3));
                assert!(
                    matches!(&args[0], Term::Compound(m2, a) if s.name(*m2)=="-" && a[0]==Term::Int(1))
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn right_associativity_of_comma_and_semicolon() {
        let (t, s) = parse1("(a ; b ; c)");
        match t {
            Term::Compound(sc, args) => {
                assert_eq!(s.name(sc), ";");
                assert!(matches!(&args[1], Term::Compound(sc2, _) if s.name(*sc2)==";"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hilog_variable_application() {
        let (t, _s) = parse1("X(bob, Y)");
        match t {
            Term::HiLog(f, args) => {
                assert_eq!(*f, Term::Var(0));
                assert_eq!(args.len(), 2);
            }
            other => panic!("expected hilog, got {other:?}"),
        }
    }

    #[test]
    fn hilog_compound_application() {
        // r(X)(parent(X,'Mary')) from the paper
        let (t, s) = parse1("r(X)(parent(X,'Mary'))");
        match t {
            Term::HiLog(f, args) => {
                assert!(matches!(&*f, Term::Compound(r, _) if s.name(*r) == "r"));
                assert_eq!(args.len(), 1);
            }
            other => panic!("expected hilog, got {other:?}"),
        }
    }

    #[test]
    fn hilog_integer_functor() {
        // 7(E) — integers may be HiLog functors
        let (t, _) = parse1("7(E)");
        match t {
            Term::HiLog(f, args) => {
                assert_eq!(*f, Term::Int(7));
                assert_eq!(args.len(), 1);
            }
            other => panic!("expected hilog, got {other:?}"),
        }
    }

    #[test]
    fn negative_integers() {
        let (t, _) = parse1("-42");
        assert_eq!(t, Term::Int(-42));
        let (t2, s2) = parse1("3 - -1");
        assert!(matches!(t2, Term::Compound(m, ref a) if s2.name(m)=="-" && a[1]==Term::Int(-1)));
    }

    #[test]
    fn prefix_negation_operators() {
        let (t, s) = parse1("tnot win(X)");
        match t {
            Term::Compound(tn, args) => {
                assert_eq!(s.name(tn), "tnot");
                assert_eq!(args.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        let (t2, s2) = parse1("\\+ p(X)");
        assert!(matches!(t2, Term::Compound(np, _) if s2.name(np) == "\\+"));
    }

    #[test]
    fn lists_and_tails() {
        let (t, s) = parse1("[1,2|T]");
        assert_eq!(format!("{}", t.display(&s)), "[1,2|_0]");
    }

    #[test]
    fn curly_braces() {
        let (t, _) = parse1("{a,b}");
        assert!(matches!(t, Term::Compound(c, _) if c == wk::CURLY));
    }

    #[test]
    fn parenthesized_comma_is_conjunction() {
        let (t, _) = parse1("(a, b)");
        assert!(matches!(t, Term::Compound(c, _) if c == wk::COMMA));
    }

    #[test]
    fn atom_that_is_operator_in_arg_position() {
        // `p(-)` — operator atom as plain argument
        let (t, s) = parse1("p(-)");
        match t {
            Term::Compound(p, args) => {
                assert_eq!(s.name(p), "p");
                assert!(matches!(&args[0], Term::Atom(m) if s.name(*m) == "-"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn query_parsing_collects_var_names() {
        let (mut s, o) = setup();
        let q = parse_query("benefits('John', P), P(X, Y)", &mut s, &o).unwrap();
        assert_eq!(q.goals.len(), 2);
        assert_eq!(q.var_names, vec!["P", "X", "Y"]);
    }

    #[test]
    fn if_then_else_shape() {
        let (t, s) = parse1("(a -> b ; c)");
        match t {
            Term::Compound(sc, args) => {
                assert_eq!(s.name(sc), ";");
                assert!(matches!(&args[0], Term::Compound(ar, _) if s.name(*ar) == "->"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn underscore_vars_are_distinct() {
        let (mut s, o) = setup();
        let items = parse_program("p(_, _).", &mut s, &o).unwrap();
        match &items[0] {
            Item::Clause(c) => {
                assert_eq!(c.head.args()[0], Term::Var(0));
                assert_eq!(c.head.args()[1], Term::Var(1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_on_missing_close_paren() {
        let (mut s, o) = setup();
        assert!(parse_program("p(a.", &mut s, &o).is_err());
    }

    #[test]
    fn whole_program_roundtrip() {
        let (mut s, o) = setup();
        let src = r#"
            :- table path/2.
            path(X,Y) :- edge(X,Y).
            path(X,Y) :- path(X,Z), edge(Z,Y).
            edge(1,2). edge(2,3). edge(3,1).
        "#;
        let items = parse_program(src, &mut s, &o).unwrap();
        assert_eq!(items.len(), 6);
        assert!(matches!(items[0], Item::Directive(_)));
        assert!(matches!(items[5], Item::Clause(_)));
    }
}
