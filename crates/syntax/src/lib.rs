//! # xsb-syntax
//!
//! Source-level front end for the rusty-xsb deductive database engine:
//! tokenizer, operator-precedence parser, HiLog syntax (paper §4.1), the
//! HiLog → first-order `apply` encoding with compile-time specialization
//! (§4.7), and the general / formatted readers (§4.6).
//!
//! The AST produced here is consumed by the SLG-WAM compiler in `xsb-core`,
//! by the bottom-up evaluator in `xsb-datalog`, and by the well-founded
//! semantics evaluator in `xsb-wfs`.

pub mod hilog;
pub mod lexer;
pub mod ops;
pub mod parser;
pub mod reader;
pub mod sym;
pub mod term;

pub use hilog::HilogEncoder;
pub use ops::{OpDef, OpTable, OpType};
pub use parser::{parse_program, parse_query, parse_term_str, ParseError, Query};
pub use reader::{formatted_read, FieldKind, ProgramReader, ReadItem};
pub use sym::{well_known, Sym, SymbolTable};
pub use term::{Clause, Item, Term};
