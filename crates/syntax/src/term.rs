//! Source-level terms.
//!
//! The parser produces this AST; the clause compiler, the bottom-up
//! evaluator, and the well-founded-semantics evaluator all consume it.
//! Variables are numbered per clause (`Var(0)`, `Var(1)`, …) with names kept
//! in a side table by the parser.
//!
//! HiLog generality (paper §4.1): a term may have *any* term as its functor.
//! First-order terms use the compact [`Term::Compound`] form; terms whose
//! functor is itself compound (e.g. `path(G)(X,Y)`) use [`Term::HiLog`].

use crate::sym::{well_known, Sym, SymbolTable};
use std::fmt;

/// A source-level term.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A variable, numbered within its clause.
    Var(u32),
    /// An atom (0-ary constant).
    Atom(Sym),
    /// An integer constant.
    Int(i64),
    /// A first-order compound `f(t1,…,tn)` with `n ≥ 1`.
    Compound(Sym, Vec<Term>),
    /// A HiLog application `T(t1,…,tn)` whose functor `T` is not an atom.
    HiLog(Box<Term>, Vec<Term>),
}

impl Term {
    /// Builds a compound, collapsing zero-argument compounds to atoms.
    pub fn compound(f: Sym, args: Vec<Term>) -> Term {
        if args.is_empty() {
            Term::Atom(f)
        } else {
            Term::Compound(f, args)
        }
    }

    /// Builds a proper list from `items`, terminated by `tail`.
    pub fn list(items: Vec<Term>, tail: Term) -> Term {
        items
            .into_iter()
            .rev()
            .fold(tail, |acc, x| Term::Compound(well_known::DOT, vec![x, acc]))
    }

    /// `[]`.
    pub fn nil() -> Term {
        Term::Atom(well_known::NIL)
    }

    /// The functor symbol and arity if this is an atom or first-order
    /// compound.
    pub fn functor(&self) -> Option<(Sym, usize)> {
        match self {
            Term::Atom(s) => Some((*s, 0)),
            Term::Compound(s, args) => Some((*s, args.len())),
            _ => None,
        }
    }

    /// Arguments of a compound / HiLog application; empty for constants.
    pub fn args(&self) -> &[Term] {
        match self {
            Term::Compound(_, a) | Term::HiLog(_, a) => a,
            _ => &[],
        }
    }

    /// True when the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Atom(_) | Term::Int(_) => true,
            Term::Compound(_, args) => args.iter().all(Term::is_ground),
            Term::HiLog(f, args) => f.is_ground() && args.iter().all(Term::is_ground),
        }
    }

    /// Collects variable ids in order of first occurrence.
    pub fn variables(&self, out: &mut Vec<u32>) {
        match self {
            Term::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Term::Atom(_) | Term::Int(_) => {}
            Term::Compound(_, args) => args.iter().for_each(|a| a.variables(out)),
            Term::HiLog(f, args) => {
                f.variables(out);
                args.iter().for_each(|a| a.variables(out));
            }
        }
    }

    /// The greatest variable id occurring in the term, if any.
    pub fn max_var(&self) -> Option<u32> {
        let mut vars = Vec::new();
        self.variables(&mut vars);
        vars.into_iter().max()
    }

    /// Renames every variable by adding `offset` — used when combining
    /// clauses parsed separately.
    pub fn shift_vars(&self, offset: u32) -> Term {
        match self {
            Term::Var(v) => Term::Var(v + offset),
            Term::Atom(_) | Term::Int(_) => self.clone(),
            Term::Compound(f, args) => {
                Term::Compound(*f, args.iter().map(|a| a.shift_vars(offset)).collect())
            }
            Term::HiLog(f, args) => Term::HiLog(
                Box::new(f.shift_vars(offset)),
                args.iter().map(|a| a.shift_vars(offset)).collect(),
            ),
        }
    }

    /// Flattens a `','`-chain into a goal list: `(a,(b,c))` → `[a,b,c]`.
    pub fn conjuncts(&self) -> Vec<&Term> {
        let mut out = Vec::new();
        fn walk<'a>(t: &'a Term, out: &mut Vec<&'a Term>) {
            match t {
                Term::Compound(f, args) if *f == well_known::COMMA && args.len() == 2 => {
                    walk(&args[0], out);
                    walk(&args[1], out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Displays the term with variable names `_0`, `_1`, ….
    pub fn display<'a>(&'a self, syms: &'a SymbolTable) -> TermDisplay<'a> {
        TermDisplay { term: self, syms }
    }
}

/// A clause `head :- body` (body empty for facts) plus variable names.
#[derive(Clone, Debug, PartialEq)]
pub struct Clause {
    pub head: Term,
    pub body: Vec<Term>,
    /// Source names of `Var(i)`, indexed by `i`. Generated variables get
    /// `"_Gn"` names.
    pub var_names: Vec<String>,
}

impl Clause {
    /// A fact (empty body).
    pub fn fact(head: Term) -> Clause {
        Clause {
            head,
            body: Vec::new(),
            var_names: Vec::new(),
        }
    }

    /// Number of distinct variables in the clause.
    pub fn num_vars(&self) -> u32 {
        let mut vars = Vec::new();
        self.head.variables(&mut vars);
        for g in &self.body {
            g.variables(&mut vars);
        }
        vars.into_iter().max().map_or(0, |m| m + 1)
    }

    /// Allocates a fresh variable id above all existing ones.
    pub fn fresh_var(&mut self) -> u32 {
        let v = self.num_vars();
        while self.var_names.len() <= v as usize {
            self.var_names.push(format!("_G{}", self.var_names.len()));
        }
        v
    }
}

/// One item of a consulted program.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    Clause(Clause),
    /// `:- Goal.` — directives are interpreted by the consumer (engine or
    /// datalog front end).
    Directive(Term),
}

/// Pretty-printer handle returned by [`Term::display`].
pub struct TermDisplay<'a> {
    term: &'a Term,
    syms: &'a SymbolTable,
}

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_term(f, self.term, self.syms)
    }
}

fn atom_needs_quotes(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        None => true,
        Some(c) if c.is_ascii_lowercase() => {
            !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        }
        Some(_) => {
            // symbolic atoms and the solo atoms print bare
            const SYMBOLIC: &str = "+-*/\\^<>=~:.?@#&$";
            !(name.chars().all(|c| SYMBOLIC.contains(c))
                || matches!(name, "[]" | "{}" | "!" | ";" | ","))
        }
    }
}

fn write_term(f: &mut fmt::Formatter<'_>, t: &Term, syms: &SymbolTable) -> fmt::Result {
    match t {
        Term::Var(v) => write!(f, "_{v}"),
        Term::Int(i) => write!(f, "{i}"),
        Term::Atom(s) => {
            let name = syms.name(*s);
            if atom_needs_quotes(name) {
                write!(f, "'{}'", name.replace('\'', "\\'"))
            } else {
                write!(f, "{name}")
            }
        }
        Term::Compound(s, args) if *s == well_known::DOT && args.len() == 2 => {
            // list notation
            write!(f, "[")?;
            write_term(f, &args[0], syms)?;
            let mut tail = &args[1];
            loop {
                match tail {
                    Term::Compound(s2, a2) if *s2 == well_known::DOT && a2.len() == 2 => {
                        write!(f, ",")?;
                        write_term(f, &a2[0], syms)?;
                        tail = &a2[1];
                    }
                    Term::Atom(s2) if *s2 == well_known::NIL => break,
                    other => {
                        write!(f, "|")?;
                        write_term(f, other, syms)?;
                        break;
                    }
                }
            }
            write!(f, "]")
        }
        Term::Compound(s, args) => {
            let name = syms.name(*s);
            if atom_needs_quotes(name) {
                write!(f, "'{}'(", name.replace('\'', "\\'"))?;
            } else {
                write!(f, "{name}(")?;
            }
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write_term(f, a, syms)?;
            }
            write!(f, ")")
        }
        Term::HiLog(fun, args) => {
            write_term(f, fun, syms)?;
            write!(f, "(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write_term(f, a, syms)?;
            }
            write!(f, ")")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms() -> SymbolTable {
        SymbolTable::new()
    }

    #[test]
    fn list_construction_and_display() {
        let mut s = syms();
        let a = Term::Atom(s.intern("a"));
        let b = Term::Atom(s.intern("b"));
        let l = Term::list(vec![a, b], Term::nil());
        assert_eq!(format!("{}", l.display(&s)), "[a,b]");
    }

    #[test]
    fn partial_list_display() {
        let mut s = syms();
        let a = Term::Atom(s.intern("a"));
        let l = Term::list(vec![a], Term::Var(0));
        assert_eq!(format!("{}", l.display(&s)), "[a|_0]");
    }

    #[test]
    fn conjunct_flattening() {
        let mut s = syms();
        let a = Term::Atom(s.intern("a"));
        let b = Term::Atom(s.intern("b"));
        let c = Term::Atom(s.intern("c"));
        let conj = Term::Compound(
            well_known::COMMA,
            vec![
                a.clone(),
                Term::Compound(well_known::COMMA, vec![b.clone(), c.clone()]),
            ],
        );
        let flat = conj.conjuncts();
        assert_eq!(flat, vec![&a, &b, &c]);
    }

    #[test]
    fn ground_and_variables() {
        let mut s = syms();
        let f = s.intern("f");
        let t = Term::Compound(f, vec![Term::Var(1), Term::Int(3), Term::Var(0)]);
        assert!(!t.is_ground());
        let mut vars = Vec::new();
        t.variables(&mut vars);
        assert_eq!(vars, vec![1, 0]);
        assert_eq!(t.max_var(), Some(1));
    }

    #[test]
    fn hilog_term_display() {
        let mut s = syms();
        let path = s.intern("path");
        let g = s.intern("g");
        let t = Term::HiLog(
            Box::new(Term::Compound(path, vec![Term::Atom(g)])),
            vec![Term::Var(0), Term::Var(1)],
        );
        assert_eq!(format!("{}", t.display(&s)), "path(g)(_0,_1)");
    }

    #[test]
    fn quoted_atom_display() {
        let mut s = syms();
        let j = s.intern("John");
        assert_eq!(format!("{}", Term::Atom(j).display(&s)), "'John'");
        let ops = s.intern("=..");
        assert_eq!(format!("{}", Term::Atom(ops).display(&s)), "=..");
    }

    #[test]
    fn clause_num_vars_and_fresh() {
        let mut s = syms();
        let p = s.intern("p");
        let mut c = Clause {
            head: Term::Compound(p, vec![Term::Var(0), Term::Var(1)]),
            body: vec![],
            var_names: vec!["X".into(), "Y".into()],
        };
        assert_eq!(c.num_vars(), 2);
        assert_eq!(c.fresh_var(), 2);
    }
}
