//! Tokenizer for Prolog/HiLog source text.
//!
//! Follows ISO-Prolog lexical conventions closely enough for the programs in
//! the paper: identifiers, quoted atoms, symbolic atoms, integers, `%` line
//! comments, `/* */` block comments, and the clause terminator `.` (a dot
//! followed by layout or end of input).
//!
//! One HiLog-relevant subtlety: an opening parenthesis that *immediately*
//! follows a name or a closing bracket is an application paren
//! ([`Token::FunctorParen`]), which is how `f(a)(b)` parses as an application
//! chain rather than `f(a) (b)`.

use std::fmt;

/// A single token with its source position (byte offset).
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    pub token: Token,
    pub offset: usize,
}

/// Lexical tokens.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Unquoted or quoted atom / symbolic atom.
    Atom(String),
    /// Variable name (starts with uppercase or `_`).
    Var(String),
    /// Integer literal.
    Int(i64),
    /// `(` directly after a name or `)` / `]` — functor application.
    FunctorParen,
    /// `(` preceded by layout — grouping.
    OpenParen,
    CloseParen,
    OpenBracket,
    CloseBracket,
    OpenBrace,
    CloseBrace,
    Comma,
    Bar,
    /// Clause-terminating dot.
    End,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Atom(a) => write!(f, "{a}"),
            Token::Var(v) => write!(f, "{v}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::FunctorParen | Token::OpenParen => write!(f, "("),
            Token::CloseParen => write!(f, ")"),
            Token::OpenBracket => write!(f, "["),
            Token::CloseBracket => write!(f, "]"),
            Token::OpenBrace => write!(f, "{{"),
            Token::CloseBrace => write!(f, "}}"),
            Token::Comma => write!(f, ","),
            Token::Bar => write!(f, "|"),
            Token::End => write!(f, "."),
        }
    }
}

/// Lexer error with byte offset.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

const SYMBOLIC: &str = "+-*/\\^<>=~:.?@#&$";

/// Tokenizes `src` completely.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    // True when the previous token could end a term, so a following `(`
    // is an application paren.
    let mut prev_ends_term = false;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
                prev_ends_term = false;
            }
            '%' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated block comment".into(),
                            offset: start,
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
                prev_ends_term = false;
            }
            '(' => {
                out.push(Spanned {
                    token: if prev_ends_term {
                        Token::FunctorParen
                    } else {
                        Token::OpenParen
                    },
                    offset: i,
                });
                i += 1;
                prev_ends_term = false;
            }
            ')' => {
                out.push(Spanned {
                    token: Token::CloseParen,
                    offset: i,
                });
                i += 1;
                prev_ends_term = true;
            }
            '[' => {
                // `[]` as a single atom token when immediately closed
                if i + 1 < bytes.len() && bytes[i + 1] == b']' {
                    out.push(Spanned {
                        token: Token::Atom("[]".into()),
                        offset: i,
                    });
                    i += 2;
                    prev_ends_term = true;
                } else {
                    out.push(Spanned {
                        token: Token::OpenBracket,
                        offset: i,
                    });
                    i += 1;
                    prev_ends_term = false;
                }
            }
            ']' => {
                out.push(Spanned {
                    token: Token::CloseBracket,
                    offset: i,
                });
                i += 1;
                prev_ends_term = true;
            }
            '{' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'}' {
                    out.push(Spanned {
                        token: Token::Atom("{}".into()),
                        offset: i,
                    });
                    i += 2;
                    prev_ends_term = true;
                } else {
                    out.push(Spanned {
                        token: Token::OpenBrace,
                        offset: i,
                    });
                    i += 1;
                    prev_ends_term = false;
                }
            }
            '}' => {
                out.push(Spanned {
                    token: Token::CloseBrace,
                    offset: i,
                });
                i += 1;
                prev_ends_term = true;
            }
            ',' => {
                out.push(Spanned {
                    token: Token::Comma,
                    offset: i,
                });
                i += 1;
                prev_ends_term = false;
            }
            '|' => {
                out.push(Spanned {
                    token: Token::Bar,
                    offset: i,
                });
                i += 1;
                prev_ends_term = false;
            }
            '!' => {
                out.push(Spanned {
                    token: Token::Atom("!".into()),
                    offset: i,
                });
                i += 1;
                prev_ends_term = true;
            }
            ';' => {
                out.push(Spanned {
                    token: Token::Atom(";".into()),
                    offset: i,
                });
                i += 1;
                prev_ends_term = false;
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut name = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated quoted atom".into(),
                            offset: start,
                        });
                    }
                    match bytes[i] {
                        b'\'' => {
                            // '' inside quotes is an escaped quote
                            if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                                name.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        b'\\' if i + 1 < bytes.len() => {
                            let esc = bytes[i + 1] as char;
                            name.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                '\\' => '\\',
                                '\'' => '\'',
                                other => other,
                            });
                            i += 2;
                        }
                        b => {
                            name.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Spanned {
                    token: Token::Atom(name),
                    offset: start,
                });
                prev_ends_term = true;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let value: i64 = text.parse().map_err(|_| LexError {
                    message: format!("integer overflow: {text}"),
                    offset: start,
                })?;
                out.push(Spanned {
                    token: Token::Int(value),
                    offset: start,
                });
                prev_ends_term = true;
            }
            c if c.is_ascii_lowercase() => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Spanned {
                    token: Token::Atom(src[start..i].to_string()),
                    offset: start,
                });
                prev_ends_term = true;
            }
            c if c.is_ascii_uppercase() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Spanned {
                    token: Token::Var(src[start..i].to_string()),
                    offset: start,
                });
                prev_ends_term = true;
            }
            c if SYMBOLIC.contains(c) => {
                let start = i;
                while i < bytes.len() && SYMBOLIC.contains(bytes[i] as char) {
                    i += 1;
                }
                let text = &src[start..i];
                // A solitary dot followed by layout/EOF terminates the clause.
                if text == "." {
                    let next_is_layout = i >= bytes.len()
                        || (bytes[i] as char).is_ascii_whitespace()
                        || bytes[i] == b'%';
                    if next_is_layout {
                        out.push(Spanned {
                            token: Token::End,
                            offset: start,
                        });
                        prev_ends_term = false;
                        continue;
                    }
                }
                // Handle `.` that ends the text: "a=b." lexes the `=` then
                // later the dot; but "f(X).%c" also ends. A trailing run like
                // "=." splits into "=" and End.
                // a symbolic run ending in a single '.' before layout is an
                // atom plus the clause terminator (e.g. "-."), but runs like
                // "=.." stay whole
                if text.len() > 1 && text.ends_with('.') && !text[..text.len() - 1].ends_with('.') {
                    let next_is_layout = i >= bytes.len()
                        || (bytes[i] as char).is_ascii_whitespace()
                        || bytes[i] == b'%';
                    if next_is_layout {
                        out.push(Spanned {
                            token: Token::Atom(text[..text.len() - 1].to_string()),
                            offset: start,
                        });
                        out.push(Spanned {
                            token: Token::End,
                            offset: i - 1,
                        });
                        prev_ends_term = false;
                        continue;
                    }
                }
                out.push(Spanned {
                    token: Token::Atom(text.to_string()),
                    offset: start,
                });
                prev_ends_term = true;
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    offset: i,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn simple_fact() {
        assert_eq!(
            toks("edge(1,2)."),
            vec![
                Token::Atom("edge".into()),
                Token::FunctorParen,
                Token::Int(1),
                Token::Comma,
                Token::Int(2),
                Token::CloseParen,
                Token::End
            ]
        );
    }

    #[test]
    fn variables_and_atoms() {
        assert_eq!(
            toks("X _y foo 'Quoted Atom'"),
            vec![
                Token::Var("X".into()),
                Token::Var("_y".into()),
                Token::Atom("foo".into()),
                Token::Atom("Quoted Atom".into()),
            ]
        );
    }

    #[test]
    fn hilog_application_parens() {
        // `X(1)` and `f(a)(b)` use FunctorParen; `(a)` uses OpenParen.
        assert_eq!(
            toks("X(1) f(a)(b) (a)"),
            vec![
                Token::Var("X".into()),
                Token::FunctorParen,
                Token::Int(1),
                Token::CloseParen,
                Token::Atom("f".into()),
                Token::FunctorParen,
                Token::Atom("a".into()),
                Token::CloseParen,
                Token::FunctorParen,
                Token::Atom("b".into()),
                Token::CloseParen,
                Token::OpenParen,
                Token::Atom("a".into()),
                Token::CloseParen,
            ]
        );
    }

    #[test]
    fn symbolic_atoms_and_end() {
        assert_eq!(
            toks(":- a = b."),
            vec![
                Token::Atom(":-".into()),
                Token::Atom("a".into()),
                Token::Atom("=".into()),
                Token::Atom("b".into()),
                Token::End
            ]
        );
    }

    #[test]
    fn end_dot_vs_infix_dot() {
        // dot followed by layout is End even mid-line
        assert_eq!(
            toks("a. b."),
            vec![
                Token::Atom("a".into()),
                Token::End,
                Token::Atom("b".into()),
                Token::End
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a. % comment\n/* block\ncomment */ b."),
            vec![
                Token::Atom("a".into()),
                Token::End,
                Token::Atom("b".into()),
                Token::End
            ]
        );
    }

    #[test]
    fn empty_list_and_braces() {
        assert_eq!(
            toks("[] {}"),
            vec![Token::Atom("[]".into()), Token::Atom("{}".into())]
        );
    }

    #[test]
    fn quoted_atom_with_escapes() {
        assert_eq!(
            toks(r"'don''t' 'a\nb'"),
            vec![Token::Atom("don't".into()), Token::Atom("a\nb".into())]
        );
    }

    #[test]
    fn list_tokens() {
        assert_eq!(
            toks("[a|T]"),
            vec![
                Token::OpenBracket,
                Token::Atom("a".into()),
                Token::Bar,
                Token::Var("T".into()),
                Token::CloseBracket
            ]
        );
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn neck_then_end() {
        assert_eq!(
            toks("p :- q."),
            vec![
                Token::Atom("p".into()),
                Token::Atom(":-".into()),
                Token::Atom("q".into()),
                Token::End
            ]
        );
    }

    #[test]
    fn trailing_symbolic_dot_split() {
        // "X=a." with no space: '=' lexes alone because 'a' interrupts, then
        // final '.' is End.
        assert_eq!(
            toks("X=a."),
            vec![
                Token::Var("X".into()),
                Token::Atom("=".into()),
                Token::Atom("a".into()),
                Token::End
            ]
        );
    }
}
