//! Operator table.
//!
//! XSB "integrates Prolog's ability to define operators with the HiLog
//! syntax" (paper §4.1). This module holds the standard operator table and
//! supports `:- op(Priority, Type, Name)` updates.

use std::collections::HashMap;

/// Operator fixity/associativity class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpType {
    Xfx,
    Xfy,
    Yfx,
    Fy,
    Fx,
    Xf,
    Yf,
}

impl OpType {
    /// Parses the atom used in an `op/3` directive.
    pub fn from_name(s: &str) -> Option<OpType> {
        Some(match s {
            "xfx" => OpType::Xfx,
            "xfy" => OpType::Xfy,
            "yfx" => OpType::Yfx,
            "fy" => OpType::Fy,
            "fx" => OpType::Fx,
            "xf" => OpType::Xf,
            "yf" => OpType::Yf,
            _ => return None,
        })
    }
}

/// An operator definition: priority 1..=1200 plus type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpDef {
    pub priority: u32,
    pub ty: OpType,
}

/// The operator table: prefix and infix/postfix namespaces are separate, as
/// in ISO Prolog (an atom may be both, e.g. `-`).
#[derive(Clone, Debug)]
pub struct OpTable {
    prefix: HashMap<String, OpDef>,
    infix: HashMap<String, OpDef>,
    postfix: HashMap<String, OpDef>,
}

impl OpTable {
    /// The standard table (ISO core plus the XSB additions `tnot`, `e_tnot`).
    pub fn standard() -> OpTable {
        let mut t = OpTable {
            prefix: HashMap::new(),
            infix: HashMap::new(),
            postfix: HashMap::new(),
        };
        let defs: &[(u32, OpType, &str)] = &[
            (1200, OpType::Xfx, ":-"),
            (1200, OpType::Xfx, "-->"),
            (1200, OpType::Fx, ":-"),
            (1200, OpType::Fx, "?-"),
            (1150, OpType::Fx, "table"),
            (1150, OpType::Fx, "dynamic"),
            (1150, OpType::Fx, "hilog"),
            (1150, OpType::Fx, "import"),
            (1150, OpType::Fx, "export"),
            (1100, OpType::Xfy, ";"),
            (1050, OpType::Xfy, "->"),
            (1000, OpType::Xfy, ","),
            (900, OpType::Fy, "\\+"),
            (900, OpType::Fy, "tnot"),
            (900, OpType::Fy, "e_tnot"),
            (900, OpType::Fy, "not"),
            (700, OpType::Xfx, "="),
            (700, OpType::Xfx, "\\="),
            (700, OpType::Xfx, "=="),
            (700, OpType::Xfx, "\\=="),
            (700, OpType::Xfx, "@<"),
            (700, OpType::Xfx, "@>"),
            (700, OpType::Xfx, "@=<"),
            (700, OpType::Xfx, "@>="),
            (700, OpType::Xfx, "is"),
            (700, OpType::Xfx, "=:="),
            (700, OpType::Xfx, "=\\="),
            (700, OpType::Xfx, "<"),
            (700, OpType::Xfx, ">"),
            (700, OpType::Xfx, "=<"),
            (700, OpType::Xfx, ">="),
            (700, OpType::Xfx, "=.."),
            (500, OpType::Yfx, "+"),
            (500, OpType::Yfx, "-"),
            (500, OpType::Yfx, "/\\"),
            (500, OpType::Yfx, "\\/"),
            (500, OpType::Yfx, "xor"),
            (400, OpType::Yfx, "*"),
            (400, OpType::Yfx, "/"),
            (400, OpType::Yfx, "//"),
            (400, OpType::Yfx, "mod"),
            (400, OpType::Yfx, "rem"),
            (400, OpType::Yfx, "<<"),
            (400, OpType::Yfx, ">>"),
            (200, OpType::Xfx, "**"),
            (200, OpType::Xfy, "^"),
            (200, OpType::Fy, "-"),
            (200, OpType::Fy, "+"),
            (200, OpType::Fy, "\\"),
        ];
        for &(p, ty, name) in defs {
            t.define(p, ty, name);
        }
        t
    }

    /// Defines (or redefines) an operator; priority 0 removes it.
    pub fn define(&mut self, priority: u32, ty: OpType, name: &str) {
        let map = match ty {
            OpType::Fy | OpType::Fx => &mut self.prefix,
            OpType::Xfx | OpType::Xfy | OpType::Yfx => &mut self.infix,
            OpType::Xf | OpType::Yf => &mut self.postfix,
        };
        if priority == 0 {
            map.remove(name);
        } else {
            map.insert(name.to_string(), OpDef { priority, ty });
        }
    }

    pub fn prefix(&self, name: &str) -> Option<OpDef> {
        self.prefix.get(name).copied()
    }

    pub fn infix(&self, name: &str) -> Option<OpDef> {
        self.infix.get(name).copied()
    }

    pub fn postfix(&self, name: &str) -> Option<OpDef> {
        self.postfix.get(name).copied()
    }

    /// True if the atom is an operator in any namespace.
    pub fn is_operator(&self, name: &str) -> bool {
        self.prefix.contains_key(name)
            || self.infix.contains_key(name)
            || self.postfix.contains_key(name)
    }
}

impl Default for OpTable {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_table_has_core_operators() {
        let t = OpTable::standard();
        assert_eq!(
            t.infix(":-"),
            Some(OpDef {
                priority: 1200,
                ty: OpType::Xfx
            })
        );
        assert_eq!(
            t.prefix("-"),
            Some(OpDef {
                priority: 200,
                ty: OpType::Fy
            })
        );
        assert!(t.infix("tnot").is_none());
        assert!(t.prefix("tnot").is_some());
    }

    #[test]
    fn define_and_remove() {
        let mut t = OpTable::standard();
        t.define(700, OpType::Xfx, "===");
        assert!(t.infix("===").is_some());
        t.define(0, OpType::Xfx, "===");
        assert!(t.infix("===").is_none());
    }
}
