//! Experiment runners shared by the `harness` binary and the in-tree
//! benches. Each function regenerates one table or figure from the paper
//! (see DESIGN.md's per-experiment index) and returns structured rows.

use crate::workloads::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xsb_core::Engine;
use xsb_datalog::Strategy;
use xsb_storage::{client_server_join, BufferPool, Disk, Field, Table};

/// Times `f`, returning the best of `reps` runs (reduces scheduler noise).
pub fn time_best(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed());
    }
    best
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

// ---------------------------------------------------------------------
// E1 — Table 2: win/1 negation strategies on complete binary trees
// ---------------------------------------------------------------------

/// One row of Table 2: times for the three strategies at one height,
/// normalized to existential negation.
#[derive(Debug, Clone)]
pub struct Table2Row {
    pub height: u32,
    pub slg_ratio: f64,
    pub sldnf_ratio: f64,
    pub eneg_secs: f64,
}

pub fn run_table2(heights: &[u32], reps: usize) -> Vec<Table2Row> {
    let mut out = Vec::new();
    for &h in heights {
        let moves = binary_tree_moves(h);
        let expected = h % 2 == 1; // odd height: first player wins
                                   // engines are built outside the timed region; only evaluation
                                   // (plus table reset for the tabled strategies) is measured
        let t_of = |neg: &str| {
            let mut e = win_engine(neg, &moves);
            time_best(reps, move || {
                e.abolish_all_tables();
                assert_eq!(e.holds("win(1)").unwrap(), expected);
            })
        };
        let slg = secs(t_of("tnot"));
        let sldnf = secs(t_of("\\+"));
        let eneg = secs(t_of("e_tnot"));
        out.push(Table2Row {
            height: h,
            slg_ratio: slg / eneg,
            sldnf_ratio: sldnf / eneg,
            eneg_secs: eneg,
        });
    }
    out
}

// ---------------------------------------------------------------------
// E2 — Figure 2: subgoals evaluated by each strategy
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig2Row {
    pub height: u32,
    pub sldnf_calls: u64,
    pub slg_subgoals: u64,
    pub eneg_subgoals: u64,
    pub g_formula: f64,
    pub all_nodes: u64,
}

pub fn run_fig2(heights: &[u32]) -> Vec<Fig2Row> {
    let mut out = Vec::new();
    for &h in heights {
        let moves = binary_tree_moves(h);
        // SLDNF: count win/1 call dispatches
        let mut e = win_engine("\\+", &moves);
        e.holds("win(1)").unwrap();
        let sldnf_calls = e.call_count("win", 1);
        // SLG default: subgoal tables created (metrics registry)
        let mut e = win_engine("tnot", &moves);
        e.holds("win(1)").unwrap();
        let slg_subgoals = e.metrics().get(xsb_obs::Counter::SubgoalsCreated);
        // existential negation
        let mut e = win_engine("e_tnot", &moves);
        e.holds("win(1)").unwrap();
        let eneg_subgoals = e.metrics().get(xsb_obs::Counter::SubgoalsCreated);
        out.push(Fig2Row {
            height: h,
            sldnf_calls,
            slg_subgoals,
            eneg_subgoals,
            g_formula: g_formula(h),
            all_nodes: (1u64 << (h + 1)) - 1,
        });
    }
    out
}

// ---------------------------------------------------------------------
// E3/E4 — Figure 5: XSB vs bottom-up on cycles and fanout structures
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig5Row {
    pub n: i64,
    pub xsb_secs: f64,
    pub coral_def_secs: f64,
    pub coral_fac_secs: f64,
}

/// `shape` = `cycle_edges` or `fanout_edges`. Each measurement evaluates
/// `path(1, X)` to exhaustion from scratch (tables abolished between
/// iterations, as the paper's 1000-iteration loops recompute each time).
pub fn run_fig5(sizes: &[i64], shape: fn(i64) -> Vec<(i64, i64)>, reps: usize) -> Vec<Fig5Row> {
    let mut out = Vec::new();
    for &n in sizes {
        let edges = shape(n);
        let expected = n as usize;

        let mut e = engine_with_edges(PATH_LEFT_TABLED, &edges);
        let xsb = time_best(reps, || {
            e.abolish_all_tables();
            assert_eq!(e.count("path(1, X)").unwrap(), expected);
        });

        let mut d = datalog_with_edges(PATH_DATALOG, &edges);
        let coral_def = time_best(reps, || {
            assert_eq!(
                d.query("path(1, Y)", Strategy::Magic).unwrap().len(),
                expected
            );
        });
        let coral_fac = time_best(reps, || {
            assert_eq!(
                d.query("path(1, Y)", Strategy::MagicFactored)
                    .unwrap()
                    .len(),
                expected
            );
        });
        out.push(Fig5Row {
            n,
            xsb_secs: secs(xsb),
            coral_def_secs: secs(coral_def),
            coral_fac_secs: secs(coral_fac),
        });
    }
    out
}

// ---------------------------------------------------------------------
// E5 — Table 3: relative indexed-join speeds
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Table3Row {
    pub system: &'static str,
    pub secs: f64,
    pub relative: f64,
}

/// Hand-specialized native join — the "Quintus written in assembler" role.
pub fn native_join(r: &[(i64, i64)], s: &[(i64, i64)]) -> usize {
    let mut ix: HashMap<i64, Vec<i64>> = HashMap::with_capacity(s.len());
    for &(a, b) in s {
        ix.entry(a).or_default().push(b);
    }
    let mut n = 0usize;
    for &(_, y) in r {
        if let Some(zs) = ix.get(&y) {
            n += zs.len();
        }
    }
    n
}

/// XSB role: compiled tuple-at-a-time join over indexed dynamic relations.
fn xsb_join_engine(r: &[(i64, i64)], s: &[(i64, i64)]) -> Engine {
    let mut e = Engine::new();
    e.declare_dynamic("r", 2).unwrap();
    e.declare_dynamic("s", 2).unwrap();
    let rs = e.syms.intern("r");
    let ss = e.syms.intern("s");
    for &(a, b) in r {
        e.assert_term(&xsb_syntax::Term::Compound(
            rs,
            vec![xsb_syntax::Term::Int(a), xsb_syntax::Term::Int(b)],
        ))
        .unwrap();
    }
    for &(a, b) in s {
        e.assert_term(&xsb_syntax::Term::Compound(
            ss,
            vec![xsb_syntax::Term::Int(a), xsb_syntax::Term::Int(b)],
        ))
        .unwrap();
    }
    e
}

pub fn run_table3(n: i64, reps: usize) -> Vec<Table3Row> {
    let (r, s) = join_relations(n, n / 2);
    let expected = native_join(&r, &s);

    // 1. native (Quintus role)
    let t_native = time_best(reps, || {
        assert_eq!(native_join(&r, &s), expected);
    });

    // 2. XSB: compiled tuple-at-a-time with first-argument index on s
    let mut e = xsb_join_engine(&r, &s);
    let t_xsb = time_best(reps, || {
        assert_eq!(e.count("r(X, Y), s(Y, Z)").unwrap(), expected);
    });

    // 3. LDL role: interpretive set-at-a-time single-pass join
    let mut d = xsb_datalog::Datalog::new("j(X,Z) :- r(X,Y), s(Y,Z).").unwrap();
    for &(a, b) in &r {
        d.add_fact(
            "r",
            &[
                xsb_datalog::ast::Value::Int(a),
                xsb_datalog::ast::Value::Int(b),
            ],
        );
    }
    for &(a, b) in &s {
        d.add_fact(
            "s",
            &[
                xsb_datalog::ast::Value::Int(a),
                xsb_datalog::ast::Value::Int(b),
            ],
        );
    }
    let t_ldl = time_best(reps, || {
        assert_eq!(
            d.query("j(X, Z)", Strategy::SemiNaive).unwrap().len(),
            expected
        );
    });

    // 4. CORAL role: the same join through the magic-rewritten program
    let t_coral = time_best(reps, || {
        assert_eq!(d.query("j(X, Z)", Strategy::Magic).unwrap().len(), expected);
    });

    // 5. Sybase role: page store + buffer pool + latches + LSN bookkeeping
    let pool = Arc::new(BufferPool::new(Arc::new(Disk::default()), 4096));
    let rt = Table::load(
        pool.clone(),
        r.iter().map(|&(a, b)| vec![Field::Int(a), Field::Int(b)]),
        1,
        1024,
    );
    let st = Table::load(
        pool.clone(),
        s.iter().map(|&(a, b)| vec![Field::Int(a), Field::Int(b)]),
        0,
        1024,
    );
    let t_sybase = time_best(reps, || {
        let got = client_server_join(&rt, 1, &st, 0);
        assert_eq!(got, expected);
    });

    let base = secs(t_native);
    [
        ("native (Quintus role)", t_native),
        ("xsb (SLG-WAM)", t_xsb),
        ("set-at-a-time (LDL role)", t_ldl),
        ("magic interpretive (CORAL role)", t_coral),
        ("page store (Sybase role)", t_sybase),
    ]
    .into_iter()
    .map(|(system, t)| Table3Row {
        system,
        secs: secs(t),
        relative: secs(t) / base,
    })
    .collect()
}

// ---------------------------------------------------------------------
// E6 — §5: tabled left recursion within ~20-25% of SLD right recursion
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct SlgVsSldRow {
    pub workload: String,
    pub sld_secs: f64,
    pub slg_secs: f64,
    pub ratio: f64,
}

pub fn run_slg_vs_sld(chain_sizes: &[i64], tree_heights: &[u32], reps: usize) -> Vec<SlgVsSldRow> {
    let mut out = Vec::new();
    for &n in chain_sizes {
        let edges = chain_edges(n);
        let expected = (n - 1) as usize;
        let mut sld = engine_with_edges(PATH_RIGHT_SLD, &edges);
        let t_sld = time_best(reps, || {
            assert_eq!(sld.count("path(1, X)").unwrap(), expected);
        });
        let mut slg = engine_with_edges(PATH_LEFT_TABLED, &edges);
        let t_slg = time_best(reps, || {
            slg.abolish_all_tables();
            assert_eq!(slg.count("path(1, X)").unwrap(), expected);
        });
        out.push(SlgVsSldRow {
            workload: format!("chain {n}"),
            sld_secs: secs(t_sld),
            slg_secs: secs(t_slg),
            ratio: secs(t_slg) / secs(t_sld),
        });
    }
    for &h in tree_heights {
        // tree edges parent→children
        let edges: Vec<(i64, i64)> = binary_tree_moves(h);
        let expected = (1usize << (h + 1)) - 2; // all descendants of root
        let mut sld = engine_with_edges(PATH_RIGHT_SLD, &edges);
        let t_sld = time_best(reps, || {
            assert_eq!(sld.count("path(1, X)").unwrap(), expected);
        });
        let mut slg = engine_with_edges(PATH_LEFT_TABLED, &edges);
        let t_slg = time_best(reps, || {
            slg.abolish_all_tables();
            assert_eq!(slg.count("path(1, X)").unwrap(), expected);
        });
        out.push(SlgVsSldRow {
            workload: format!("tree h={h}"),
            sld_secs: secs(t_sld),
            slg_secs: secs(t_slg),
            ratio: secs(t_slg) / secs(t_sld),
        });
    }
    out
}

// ---------------------------------------------------------------------
// E7 — §5: append/3, SLD linear vs SLG quadratic
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct AppendRow {
    pub len: i64,
    pub sld_secs: f64,
    pub slg_secs: f64,
}

const APP_TABLED: &str = "
    :- table app/3.
    app([], L, L).
    app([H|T], L, [H|R]) :- app(T, L, R).
";

pub fn run_append(lens: &[i64], reps: usize) -> Vec<AppendRow> {
    let mut out = Vec::new();
    for &n in lens {
        let mut e = Engine::new();
        e.consult(APP_TABLED).unwrap();
        let listsrc = format!(
            "mylist([{}]).",
            (1..=n).map(|i| i.to_string()).collect::<Vec<_>>().join(",")
        );
        e.consult(&listsrc).unwrap();
        let t_sld = time_best(reps, || {
            assert!(e.holds("mylist(L), append(L, [0], R)").unwrap());
        });
        let t_slg = time_best(reps, || {
            e.abolish_all_tables();
            assert!(e.holds("mylist(L), app(L, [0], R)").unwrap());
        });
        out.push(AppendRow {
            len: n,
            sld_secs: secs(t_sld),
            slg_secs: secs(t_slg),
        });
    }
    out
}

// ---------------------------------------------------------------------
// E8 — HiLog overhead: first-order vs specialized vs generic apply
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct HilogRow {
    pub n: i64,
    pub first_order_secs: f64,
    pub specialized_secs: f64,
    pub generic_secs: f64,
}

pub fn run_hilog(sizes: &[i64], reps: usize) -> Vec<HilogRow> {
    let mut out = Vec::new();
    for &n in sizes {
        let edges = chain_edges(n);
        let expected = (n - 1) as usize;
        // first-order SLD
        let mut fo = engine_with_edges(PATH_RIGHT_SLD, &edges);
        let t_fo = time_best(reps, || {
            assert_eq!(fo.count("path(1, X)").unwrap(), expected);
        });
        // HiLog (right recursive to stay SLD) with specialization
        let hilog_src = "
            :- hilog g.
            hpath(G)(X, Y) :- G(X, Y).
            hpath(G)(X, Y) :- G(X, Z), hpath(G)(Z, Y).
        ";
        // rules and facts must be consulted in ONE batch: they all encode
        // onto apply/3, and re-consulting a static predicate replaces it
        let build = |specialize: bool| {
            let mut e = Engine::new();
            e.hilog_specialization = specialize;
            let mut full = String::from(hilog_src);
            // §4.7: "the obvious problem of indexing can be solved by
            // using XSB's first-string indexing" (Figure 4)
            full.push_str(":- first_string_index(apply/3).\n");
            full.push_str(":- hilog g.\n");
            for &(a, b) in &edges {
                full.push_str(&format!("g({a},{b}).\n"));
            }
            e.consult(&full).unwrap();
            e
        };
        let mut spec = build(true);
        let t_spec = time_best(reps, || {
            assert_eq!(spec.count("hpath(g)(1, X)").unwrap(), expected);
        });
        let mut generic = build(false);
        let t_gen = time_best(reps, || {
            assert_eq!(generic.count("hpath(g)(1, X)").unwrap(), expected);
        });
        out.push(HilogRow {
            n,
            first_order_secs: secs(t_fo),
            specialized_secs: secs(t_spec),
            generic_secs: secs(t_gen),
        });
    }
    out
}

// ---------------------------------------------------------------------
// E9 — dynamic (asserted) vs static (compiled) fact speed
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct DynStaticRow {
    pub n: i64,
    pub static_secs: f64,
    pub dynamic_secs: f64,
    pub ratio: f64,
}

pub fn run_dynamic_vs_static(n: i64, reps: usize) -> DynStaticRow {
    // static: compiled facts with first-argument switch
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("ds({i}, {}).\n", i * 2));
    }
    let mut stat = Engine::new();
    stat.consult(&src).unwrap();
    let probes = n.min(2000);
    let q = format!("between(0, {}, I), ds(I, V), fail", probes - 1);
    let t_static = time_best(reps, || {
        assert_eq!(stat.count(&q).unwrap(), 0);
    });

    let mut dyn_e = Engine::new();
    dyn_e.declare_dynamic("ds", 2).unwrap();
    let ds = dyn_e.syms.intern("ds");
    for i in 0..n {
        dyn_e
            .assert_term(&xsb_syntax::Term::Compound(
                ds,
                vec![xsb_syntax::Term::Int(i), xsb_syntax::Term::Int(i * 2)],
            ))
            .unwrap();
    }
    let t_dynamic = time_best(reps, || {
        assert_eq!(dyn_e.count(&q).unwrap(), 0);
    });
    DynStaticRow {
        n,
        static_secs: secs(t_static),
        dynamic_secs: secs(t_dynamic),
        ratio: secs(t_dynamic) / secs(t_static),
    }
}

// ---------------------------------------------------------------------
// E10 — bulk load paths
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct BulkloadRow {
    pub n: usize,
    pub general_secs: f64,
    pub formatted_secs: f64,
    pub object_secs: f64,
}

pub fn run_bulkload(n: usize, reps: usize) -> BulkloadRow {
    use crate::bulkload::*;
    let t_general = time_best(reps, || {
        let mut e = Engine::new();
        assert_eq!(load_general(&mut e, "emp", n).unwrap(), n);
    });
    let data = generate_delimited(n);
    let t_formatted = time_best(reps, || {
        let mut e = Engine::new();
        assert_eq!(load_formatted(&mut e, "emp", &data).unwrap(), n);
    });
    // build the object file once
    let mut builder = Engine::new();
    load_formatted(&mut builder, "emp", &data).unwrap();
    let obj = builder.save_object("emp", 3).unwrap();
    let t_object = time_best(reps, || {
        let mut e = Engine::new();
        assert_eq!(load_object(&mut e, &obj).unwrap(), n);
    });
    BulkloadRow {
        n,
        general_secs: secs(t_general),
        formatted_secs: secs(t_formatted),
        object_secs: secs(t_object),
    }
}

// ---------------------------------------------------------------------
// E13 — repeat-query serving over persistent tables
// ---------------------------------------------------------------------

/// One serving session: cold query, warm repeats served from the
/// completed table, an update (assert) that invalidates it, and a
/// rotation of distinct subgoals under a small answer-store budget.
#[derive(Debug, Clone)]
pub struct ServingReport {
    pub n: i64,
    pub warm_queries: usize,
    pub cold_secs: f64,
    pub warm_secs: f64,
    pub warm_speedup: f64,
    pub invalidate_requery_secs: f64,
    pub table_hits: u64,
    pub table_misses: u64,
    pub invalidations: u64,
    pub evictions: u64,
}

pub fn run_serving(n: i64, warm_queries: usize) -> ServingReport {
    use xsb_obs::Counter;
    let edges = cycle_edges(n);
    let expected = n as usize;
    let mut e = engine_with_edges(PATH_LEFT_TABLED, &edges);

    // cold: the first query computes the closure from node 1
    let t0 = Instant::now();
    assert_eq!(e.count("path(1, X)").unwrap(), expected);
    let cold = secs(t0.elapsed());

    // warm: identical repeat queries answered from the completed table
    let t0 = Instant::now();
    for _ in 0..warm_queries {
        assert_eq!(e.count("path(1, X)").unwrap(), expected);
    }
    let warm = secs(t0.elapsed()) / warm_queries as f64;

    // update: one assert reaches the tabled predicate through the
    // dependency graph; the re-query recomputes instead of serving stale
    let edge = e.syms.intern("edge");
    e.assert_term(&xsb_syntax::Term::Compound(
        edge,
        vec![xsb_syntax::Term::Int(n), xsb_syntax::Term::Int(n + 1)],
    ))
    .unwrap();
    let t0 = Instant::now();
    assert_eq!(e.count("path(1, X)").unwrap(), expected + 1);
    let requery = secs(t0.elapsed());

    // bounded cache: rotate distinct subgoals through a budget that holds
    // only a few tables, forcing least-recently-hit eviction
    e.set_table_budget(Some(2 * n as u64));
    for k in 1..=8.min(n) {
        assert!(e.count(&format!("path({k}, X)")).unwrap() >= expected);
    }

    let m = e.metrics();
    ServingReport {
        n,
        warm_queries,
        cold_secs: cold,
        warm_secs: warm,
        warm_speedup: cold / warm.max(1e-9),
        invalidate_requery_secs: requery,
        table_hits: m.get(Counter::TableHits),
        table_misses: m.get(Counter::TableMisses),
        invalidations: m.get(Counter::TableInvalidations),
        evictions: m.get(Counter::TableEvictions),
    }
}

// ---------------------------------------------------------------------
// E16 — emulator raw speed: fused vs unfused dispatch on E2/E6/E7 cores
// ---------------------------------------------------------------------

/// One emulator workload measured on a fused and an unfused engine.
///
/// `work_instructions` is the number of instructions one evaluation
/// dispatches on the *unfused* engine — the workload's work in original
/// instruction units, independent of how many superinstructions the
/// fused engine folds them into. `instructions_per_sec` is that work
/// divided by the fused engine's wall time, so the metric rises both
/// when dispatch gets cheaper and when fusion retires more work per
/// dispatch — a higher-is-better raw-speed gauge the bench gate tracks.
#[derive(Debug, Clone)]
pub struct EmulatorRow {
    pub workload: &'static str,
    pub work_instructions: u64,
    /// dispatches the fused engine needs for the same evaluation
    /// (superinstructions retire several work units at once)
    pub fused_instructions: u64,
    /// best-of-reps wall time of one evaluation, fused engine
    pub query_time_ns: u64,
    pub unfused_query_time_ns: u64,
    pub instructions_per_sec: f64,
    pub unfused_instructions_per_sec: f64,
    pub speedup: f64,
}

fn measure_emulator(
    workload: &'static str,
    src: &str,
    reps: usize,
    eval: &dyn Fn(&mut Engine),
) -> EmulatorRow {
    let build = |fused: bool| {
        let mut e = Engine::with_fusion(fused);
        e.consult(src).expect("emulator workload consults");
        e
    };
    let instr_count = |e: &mut Engine| {
        eval(e); // warm up (compiles the query predicate, fills caches)
        e.reset_metrics();
        eval(e);
        e.metrics().get(xsb_obs::Counter::Instructions)
    };
    let mut fused = build(true);
    let mut plain = build(false);
    let fused_instructions = instr_count(&mut fused);
    let work_instructions = instr_count(&mut plain);
    let fused_t = time_best(reps, || eval(&mut fused));
    let plain_t = time_best(reps, || eval(&mut plain));
    let fused_ns = fused_t.as_nanos() as u64;
    let plain_ns = plain_t.as_nanos() as u64;
    EmulatorRow {
        workload,
        work_instructions,
        fused_instructions,
        query_time_ns: fused_ns,
        unfused_query_time_ns: plain_ns,
        instructions_per_sec: work_instructions as f64 / secs(fused_t).max(1e-9),
        unfused_instructions_per_sec: work_instructions as f64 / secs(plain_t).max(1e-9),
        speedup: plain_ns as f64 / fused_ns.max(1) as f64,
    }
}

/// Runs the three core emulator workloads (the E2 win/1 game, the E6
/// left-recursive chain, and an E7-style append enumeration) on a fused
/// and an unfused engine. Facts are consulted as *static* source so the
/// compiled fact code exercises the `get_constant_proceed` and unify-run
/// superinstructions like user programs do.
pub fn run_emulator(quick: bool) -> Vec<EmulatorRow> {
    let reps = if quick { 5 } else { 8 };
    let win_h: u32 = if quick { 8 } else { 10 };
    let chain_n: i64 = if quick { 512 } else { 2048 };
    let app_n: i64 = if quick { 160 } else { 400 };

    let mut win_src = String::from(":- table win/1.\nwin(X) :- move(X,Y), tnot win(Y).\n");
    for &(a, b) in &binary_tree_moves(win_h) {
        win_src.push_str(&format!("move({a},{b}).\n"));
    }
    let win_expected = win_h % 2 == 1;

    let mut path_src = String::from(PATH_LEFT_TABLED);
    for &(a, b) in &chain_edges(chain_n) {
        path_src.push_str(&format!("edge({a},{b}).\n"));
    }
    let path_expected = (chain_n - 1) as usize;

    // E7 core, driven as naive reverse: n(n+1)/2 append steps of pure SLD
    // emulator work — the classic WAM raw-dispatch benchmark
    let app_src = format!(
        "app([], L, L).\n\
         app([H|T], L, [H|R]) :- app(T, L, R).\n\
         nrev([], []).\n\
         nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).\n\
         mylist([{}]).",
        (1..=app_n)
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );

    vec![
        measure_emulator("e2_win", &win_src, reps, &|e| {
            e.abolish_all_tables();
            assert_eq!(e.holds("win(1)").unwrap(), win_expected);
        }),
        measure_emulator("e6_path", &path_src, reps, &|e| {
            e.abolish_all_tables();
            assert_eq!(e.count("path(1, X)").unwrap(), path_expected);
        }),
        measure_emulator("e7_append", &app_src, reps, &|e| {
            assert_eq!(e.count("mylist(L), nrev(L, R)").unwrap(), 1);
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emulator_measure_counts_fused_dispatch_savings() {
        // fact retrieval compiles to get_constant;proceed sequences the
        // peephole pass fuses: the fused engine must dispatch strictly
        // fewer instructions for identical answers
        let src = "edge(1,2). edge(2,3). edge(3,4).";
        let row = measure_emulator("smoke", src, 2, &|e| {
            assert_eq!(e.count("edge(X, Y)").unwrap(), 3);
        });
        assert!(
            row.fused_instructions < row.work_instructions,
            "fusion did not reduce dispatches: {row:?}"
        );
        assert!(row.instructions_per_sec > 0.0);
        assert!(row.query_time_ns > 0);
    }

    #[test]
    fn serving_warm_hits_invalidation_and_eviction() {
        let r = run_serving(48, 3);
        assert!(r.table_hits >= 3, "warm repeats hit the table: {r:?}");
        assert!(r.table_misses >= 1);
        assert!(r.invalidations >= 1, "assert invalidated path/2: {r:?}");
        assert!(r.evictions >= 1, "small budget evicted tables: {r:?}");
    }

    #[test]
    fn fig2_counts_follow_g_formula() {
        // even heights: win(1) is false, so every strategy runs to
        // exhaustion — the regime of the paper's Figure 2 (its example is
        // height 4: 13 of 31 subgoals)
        let rows = run_fig2(&[2, 4, 6]);
        for r in &rows {
            assert_eq!(
                r.sldnf_calls, r.g_formula as u64,
                "height {}: SLDNF call count equals G(n)",
                r.height
            );
            assert_eq!(
                r.slg_subgoals, r.all_nodes,
                "height {}: SLG evaluates every node",
                r.height
            );
            assert!(
                r.eneg_subgoals <= r.sldnf_calls + 2,
                "height {}: E-Neg ≈ SLDNF ({} vs {})",
                r.height,
                r.eneg_subgoals,
                r.sldnf_calls
            );
        }
    }

    #[test]
    fn table3_systems_agree_on_counts() {
        // correctness-only run with tiny input
        let rows = run_table3(200, 1);
        assert_eq!(rows.len(), 5);
        assert!((rows[0].relative - 1.0).abs() < 1e-9);
    }

    #[test]
    fn native_join_matches_nested_loops() {
        let (r, s) = join_relations(100, 13);
        let brute = r
            .iter()
            .flat_map(|&(_, y)| s.iter().filter(move |&&(a, _)| a == y))
            .count();
        assert_eq!(native_join(&r, &s), brute);
    }

    #[test]
    fn fig5_rows_are_consistent() {
        let rows = run_fig5(&[8, 16], cycle_edges, 1);
        assert_eq!(rows.len(), 2);
        let rows = run_fig5(&[8, 16], fanout_edges, 1);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn append_runs_both_modes() {
        let rows = run_append(&[16, 32], 1);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn hilog_runs_all_three_variants() {
        let rows = run_hilog(&[32], 1);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn dynamic_vs_static_runs() {
        let row = run_dynamic_vs_static(500, 1);
        assert!(row.static_secs > 0.0 && row.dynamic_secs > 0.0);
    }

    #[test]
    fn bulkload_runs() {
        let row = run_bulkload(300, 1);
        assert!(row.object_secs > 0.0);
    }

    #[test]
    fn factoring_strictly_reduces_store_cells() {
        let rows = run_factoring(&[24], 2);
        assert_eq!(rows.len(), 4, "factored/unfactored x hash/trie");
        for pair in rows.chunks(2) {
            let (fac, unfac) = (&pair[0], &pair[1]);
            assert!(fac.factored && !unfac.factored);
            assert_eq!(fac.index, unfac.index);
            assert!(
                fac.store_cells < unfac.store_cells,
                "{}: factored {} cells < unfactored {}",
                fac.index,
                fac.store_cells,
                unfac.store_cells
            );
            assert!(fac.cells_saved > 0, "{fac:?}");
            assert_eq!(fac.cells_full, fac.cells_factored + fac.cells_saved);
        }
    }

    #[test]
    fn table_index_ablation_includes_unfactored_baseline() {
        let rows = run_table_index_ablation(&[12], 1);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        // path(X,Y) over a cycle is an all-variable call: factored and
        // full answers coincide, so the baseline stores the same cells
        assert!(r.hash_cells <= r.hash_unfactored_cells, "{r:?}");
        assert!(r.trie_cells <= r.trie_unfactored_cells, "{r:?}");
    }
}

// ---------------------------------------------------------------------
// Ablation — hash vs trie table indexing (paper §4.5 future work)
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct TableIndexRow {
    pub n: i64,
    pub hash_secs: f64,
    pub trie_secs: f64,
    pub hash_cells: u64,
    pub trie_cells: u64,
    /// same workload with substitution factoring off (full tuples)
    pub hash_unfactored_cells: u64,
    pub trie_unfactored_cells: u64,
}

/// An engine on the Figure-5 cycle workload with a chosen table index and
/// answer-store representation.
fn configured_engine(
    index: xsb_core::table::TableIndex,
    factored: bool,
    edges: &[(i64, i64)],
) -> Engine {
    let mut e = Engine::new();
    e.set_table_index(index);
    e.set_answer_factoring(factored);
    e.declare_dynamic("edge", 2).unwrap();
    e.consult(PATH_LEFT_TABLED).unwrap();
    let edge = e.syms.intern("edge");
    for &(a, b) in edges {
        e.assert_term(&xsb_syntax::Term::Compound(
            edge,
            vec![xsb_syntax::Term::Int(a), xsb_syntax::Term::Int(b)],
        ))
        .unwrap();
    }
    e
}

/// Compares the two table-index representations on the Figure-5 cycle
/// workload: evaluation time and answer-store cells.
pub fn run_table_index_ablation(sizes: &[i64], reps: usize) -> Vec<TableIndexRow> {
    let mut out = Vec::new();
    for &n in sizes {
        let edges = cycle_edges(n);
        let expected = n as usize;

        let mut hash_e = engine_with_edges(PATH_LEFT_TABLED, &edges);
        let t_hash = time_best(reps, || {
            hash_e.abolish_all_tables();
            assert_eq!(hash_e.count("path(X, Y)").unwrap(), expected * expected);
        });
        let hash_cells = hash_e.tables.answer_store_cells();

        let mut trie_e = Engine::new();
        trie_e.set_table_index(xsb_core::table::TableIndex::Trie);
        trie_e.declare_dynamic("edge", 2).unwrap();
        trie_e.consult(PATH_LEFT_TABLED).unwrap();
        let edge = trie_e.syms.intern("edge");
        for &(a, b) in &edges {
            trie_e
                .assert_term(&xsb_syntax::Term::Compound(
                    edge,
                    vec![xsb_syntax::Term::Int(a), xsb_syntax::Term::Int(b)],
                ))
                .unwrap();
        }
        let t_trie = time_best(reps, || {
            trie_e.abolish_all_tables();
            assert_eq!(trie_e.count("path(X, Y)").unwrap(), expected * expected);
        });
        let trie_cells = trie_e.tables.answer_store_cells();

        // the unfactored baseline under both indexes (cells only: the
        // timing comparison at full scale is E14's job)
        let mut unfac_hash = configured_engine(xsb_core::table::TableIndex::Hash, false, &edges);
        assert_eq!(unfac_hash.count("path(X, Y)").unwrap(), expected * expected);
        let hash_unfactored_cells = unfac_hash.tables.answer_store_cells();
        let mut unfac_trie = configured_engine(xsb_core::table::TableIndex::Trie, false, &edges);
        assert_eq!(unfac_trie.count("path(X, Y)").unwrap(), expected * expected);
        let trie_unfactored_cells = unfac_trie.tables.answer_store_cells();

        out.push(TableIndexRow {
            n,
            hash_secs: secs(t_hash),
            trie_secs: secs(t_trie),
            hash_cells,
            trie_cells,
            hash_unfactored_cells,
            trie_unfactored_cells,
        });
    }
    out
}

// ---------------------------------------------------------------------
// E14 — substitution factoring: answer-store cells and answer serving
// ---------------------------------------------------------------------

/// One configuration of the factoring experiment: a partially bound
/// `path(1,X)` closure with the answer store factored or holding full
/// tuples, under one table index.
#[derive(Debug, Clone)]
pub struct FactoringRow {
    pub n: i64,
    pub index: &'static str,
    pub factored: bool,
    /// answer-store cells actually held after the query
    pub store_cells: u64,
    /// `answer_cells_factored` counter (cells a factored store writes)
    pub cells_factored: u64,
    /// `answer_cells_full` counter (cells full tuples would occupy)
    pub cells_full: u64,
    /// `answer_cells_saved` counter (`full - factored`)
    pub cells_saved: u64,
    pub cold_secs: f64,
    /// one warm repeat query served from the completed table
    pub warm_secs: f64,
    pub warm_answers_per_sec: f64,
}

/// Measures what substitution factoring buys on a partially bound call:
/// `path(1, X)` over the Figure-5 cycle stores one binding cell per
/// answer instead of the two-cell `(1, X)` tuple, and warm consumption
/// binds answers straight out of the arena. Runs factored and unfactored
/// stores under both table indexes.
pub fn run_factoring(sizes: &[i64], warm_reps: usize) -> Vec<FactoringRow> {
    use xsb_core::table::TableIndex;
    use xsb_obs::Counter;
    let mut out = Vec::new();
    for &n in sizes {
        let edges = cycle_edges(n);
        let expected = n as usize;
        for (index, index_name) in [(TableIndex::Hash, "hash"), (TableIndex::Trie, "trie")] {
            for factored in [true, false] {
                let mut e = configured_engine(index, factored, &edges);
                let t0 = Instant::now();
                assert_eq!(e.count("path(1, X)").unwrap(), expected);
                let cold = secs(t0.elapsed());
                let warm = secs(time_best(warm_reps, || {
                    assert_eq!(e.count("path(1, X)").unwrap(), expected);
                }));
                let store_cells = e.tables.answer_store_cells();
                let m = e.metrics();
                out.push(FactoringRow {
                    n,
                    index: index_name,
                    factored,
                    store_cells,
                    cells_factored: m.get(Counter::AnswerCellsFactored),
                    cells_full: m.get(Counter::AnswerCellsFull),
                    cells_saved: m.get(Counter::AnswerCellsSaved),
                    cold_secs: cold,
                    warm_secs: warm,
                    warm_answers_per_sec: expected as f64 / warm.max(1e-9),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Ablation — naive vs semi-naive bottom-up evaluation
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct SemiNaiveRow {
    pub n: i64,
    pub naive_secs: f64,
    pub seminaive_secs: f64,
    pub naive_tuples: u64,
    pub seminaive_tuples: u64,
}

/// Quantifies what the differential evaluation buys the bottom-up baseline
/// (all the paper's comparison systems used semi-naive fixpoints).
pub fn run_seminaive_ablation(sizes: &[i64], reps: usize) -> Vec<SemiNaiveRow> {
    let mut out = Vec::new();
    for &n in sizes {
        let edges = chain_edges(n);
        let expected = ((n - 1) * n / 2) as usize; // all path pairs on a chain
        let mut d = datalog_with_edges(PATH_DATALOG, &edges);
        let t_naive = time_best(reps, || {
            assert_eq!(
                d.query("path(X, Y)", Strategy::Naive).unwrap().len(),
                expected
            );
        });
        let naive_tuples = d.last_stats.tuples_considered;
        let t_semi = time_best(reps, || {
            assert_eq!(
                d.query("path(X, Y)", Strategy::SemiNaive).unwrap().len(),
                expected
            );
        });
        let seminaive_tuples = d.last_stats.tuples_considered;
        out.push(SemiNaiveRow {
            n,
            naive_secs: secs(t_naive),
            seminaive_secs: secs(t_semi),
            naive_tuples,
            seminaive_tuples,
        });
    }
    out
}

// ---------------------------------------------------------------------
// E15 — concurrent serving: shared-table engine pool
// ---------------------------------------------------------------------

/// One worker-count configuration of the E15 sweep.
#[derive(Debug, Clone)]
pub struct ConcurrentRow {
    pub workers: usize,
    /// Aggregate throughput over the CONTENDED cold phase: every cold
    /// subgoal is submitted to every worker at once (subgoals × workers
    /// queries), so the workers race the same first calls. The claim/wait
    /// protocol makes one racer compute while the rest park and import —
    /// without it this phase does N× duplicated work.
    pub cold_qps: f64,
    /// Cold-phase table computes beyond the one-per-subgoal minimum
    /// (`table_misses - subgoals`). The claim/wait protocol holds this at
    /// 0; it is gate-tracked so duplicated cold work cannot creep back.
    pub cold_dup_computes: u64,
    /// Cold-phase parked claim waits (losing racers that imported after
    /// the claimant published) — contention evidence, not gated.
    pub claim_waits: u64,
    /// Aggregate throughput re-serving those subgoals; after the
    /// contended cold phase every worker holds every table locally, so
    /// this measures completed-table serving at full fan-out.
    pub warm_qps: f64,
    /// Aggregate throughput while `consult_all` invalidation churn keeps
    /// ripping the tables out from under the workers.
    pub churn_qps: f64,
    pub shared_hits: u64,
    pub shared_publishes: u64,
    pub shared_invalidations: u64,
    /// Per-job serving latency percentiles (worker-side run time), carved
    /// per phase from the pool's cumulative histograms by snapshot
    /// subtraction.
    pub cold_p50_ns: u64,
    pub cold_p99_ns: u64,
    pub warm_p50_ns: u64,
    pub warm_p99_ns: u64,
    pub churn_p50_ns: u64,
    pub churn_p99_ns: u64,
    /// Queue wait (submit → worker pickup) over all three phases.
    pub queue_p50_ns: u64,
    pub queue_p99_ns: u64,
}

/// E15 report: the sweep rows plus the two headline ratios.
#[derive(Debug, Clone)]
pub struct ConcurrentReport {
    pub n: i64,
    pub subgoals: usize,
    pub warm_reps: usize,
    pub churn_rounds: usize,
    pub rows: Vec<ConcurrentRow>,
    /// Warm vs contended-cold throughput at the largest worker count.
    /// This is the core-count-independent measure of what the shared
    /// store buys: a warm hit serves a completed table instead of
    /// computing it (and the cold side itself already dedups to one
    /// compute per subgoal via claim/wait).
    pub shared_speedup: f64,
    /// Aggregate warm qps at the largest worker count vs one worker.
    /// Thread-level scaling — only meaningful on a multi-core host.
    pub warm_scaling: f64,
    /// Headline tail latency: warm-phase per-job serving latency at the
    /// largest worker count (the `bench_gate` guarded metrics).
    pub p50_ns: u64,
    pub p99_ns: u64,
}

/// `path/2` over an `n`-cycle with a dynamic EDB, so `consult_all` churn
/// appends facts (rather than replacing the relation).
fn pool_program(n: i64) -> String {
    let mut src = String::from(
        ":- table path/2.\n:- dynamic edge/2.\n\
         path(X,Y) :- edge(X,Y).\n\
         path(X,Y) :- path(X,Z), edge(Z,Y).\n",
    );
    for (a, b) in cycle_edges(n) {
        src.push_str(&format!("edge({a},{b}).\n"));
    }
    src
}

pub fn run_concurrent(
    n: i64,
    worker_counts: &[usize],
    subgoals: usize,
    warm_reps: usize,
    churn_rounds: usize,
) -> ConcurrentReport {
    use xsb_core::{PoolConfig, ServerPool};
    use xsb_obs::Counter;
    let src = pool_program(n);
    let expected = n as usize; // every node reaches every node on a cycle
    let mut rows = Vec::new();
    for &w in worker_counts {
        let pool = ServerPool::new(
            &src,
            PoolConfig {
                workers: w,
                ..PoolConfig::default()
            },
        )
        .expect("pool program consults");

        // cold (contended): every worker gets every cold subgoal, all
        // submitted before any can finish — the N×-duplicated-work
        // scenario the claim/wait protocol exists for. One racer per
        // subgoal computes; the rest park and import the published frame.
        let t0 = Instant::now();
        let tickets: Vec<_> = (0..subgoals)
            .flat_map(|k| (0..w).map(move |worker| (k as i64 + 1, worker)))
            .map(|(k, worker)| pool.submit_count(&format!("path({k}, X)"), Some(worker)))
            .collect();
        for t in tickets {
            assert_eq!(t.wait().unwrap(), expected);
        }
        let cold = secs(t0.elapsed());
        let m_cold = pool.metrics();

        // warm: the same subgoals again — after the contended cold phase
        // every worker already holds every table (computed or imported),
        // so this measures completed-table serving throughput
        let t0 = Instant::now();
        for rep in 1..=warm_reps {
            let tickets: Vec<_> = (0..subgoals)
                .map(|k| {
                    pool.submit_count(&format!("path({}, X)", k as i64 + 1), Some((k + rep) % w))
                })
                .collect();
            for t in tickets {
                assert_eq!(t.wait().unwrap(), expected);
            }
        }
        let warm = secs(t0.elapsed());
        let m_warm = pool.metrics();

        // churn: every round appends a fresh out-edge from node n, which
        // invalidates path/2 on every worker and in the shared store;
        // queries race the recomputation across workers
        let t0 = Instant::now();
        for round in 0..churn_rounds {
            pool.consult_all(&format!("edge({n}, {}).", n + 1 + round as i64))
                .expect("churn fact consults");
            let tickets: Vec<_> = (0..subgoals)
                .map(|k| pool.submit_count(&format!("path({}, X)", k as i64 + 1), Some(k % w)))
                .collect();
            for t in tickets {
                // each appended edge makes one more node reachable
                assert_eq!(t.wait().unwrap(), expected + round + 1);
            }
        }
        let churn = secs(t0.elapsed());

        let m = pool.metrics();
        // the histograms are cumulative: carve each phase out by
        // subtracting the previous snapshot (churn also counts its
        // broadcast consults — serving latency under churn, as served)
        let warm_hist = m_warm.run_time.diff(&m_cold.run_time);
        let churn_hist = m.run_time.diff(&m_warm.run_time);
        rows.push(ConcurrentRow {
            workers: w,
            cold_qps: (subgoals * w) as f64 / cold.max(1e-9),
            cold_dup_computes: m_cold
                .get(Counter::TableMisses)
                .saturating_sub(subgoals as u64),
            claim_waits: m_cold.get(Counter::ClaimWaits),
            warm_qps: (subgoals * warm_reps) as f64 / warm.max(1e-9),
            churn_qps: (subgoals * churn_rounds) as f64 / churn.max(1e-9),
            shared_hits: m.get(Counter::SharedTableHits),
            shared_publishes: m.get(Counter::SharedTablePublishes),
            shared_invalidations: m.get(Counter::SharedTableInvalidations),
            cold_p50_ns: m_cold.run_time.p50(),
            cold_p99_ns: m_cold.run_time.p99(),
            warm_p50_ns: warm_hist.p50(),
            warm_p99_ns: warm_hist.p99(),
            churn_p50_ns: churn_hist.p50(),
            churn_p99_ns: churn_hist.p99(),
            queue_p50_ns: m.queue_wait.p50(),
            queue_p99_ns: m.queue_wait.p99(),
        });
    }
    let first = rows.first().expect("at least one worker count");
    let last = rows.last().expect("at least one worker count");
    ConcurrentReport {
        n,
        subgoals,
        warm_reps,
        churn_rounds,
        shared_speedup: last.warm_qps / last.cold_qps.max(1e-9),
        warm_scaling: last.warm_qps / first.warm_qps.max(1e-9),
        p50_ns: last.warm_p50_ns,
        p99_ns: last.warm_p99_ns,
        rows,
    }
}

#[cfg(test)]
mod concurrent_tests {
    use super::*;

    #[test]
    fn concurrent_report_exercises_the_shared_store() {
        let r = run_concurrent(96, &[1, 2], 4, 2, 2);
        assert_eq!(r.rows.len(), 2);
        let two = &r.rows[1];
        assert!(two.shared_publishes >= 1, "tables reach the store: {r:?}");
        assert!(
            two.shared_hits >= 1,
            "losing cold racers import from the store: {r:?}"
        );
        assert_eq!(
            two.cold_dup_computes, 0,
            "claim/wait dedups the contended cold phase: {r:?}"
        );
        assert!(
            two.shared_invalidations >= 1,
            "churn invalidates the store: {r:?}"
        );
        assert!(
            r.shared_speedup > 1.0,
            "serving a completed shared table beats recomputing it: {r:?}"
        );
        // per-phase latency percentiles are populated and ordered
        assert!(two.cold_p50_ns > 0 && two.warm_p50_ns > 0 && two.churn_p50_ns > 0);
        assert!(two.cold_p99_ns >= two.cold_p50_ns);
        assert!(two.warm_p99_ns >= two.warm_p50_ns);
        assert_eq!(r.p50_ns, two.warm_p50_ns, "headline = last row's warm");
        assert_eq!(r.p99_ns, two.warm_p99_ns);
    }
}

// ---------------------------------------------------------------------
// E17 — durability: group-commit throughput, recovery time, checkpoint
// ---------------------------------------------------------------------

/// One group-commit configuration: `window_us == 0` fsyncs at every
/// commit point, wider windows batch commits into fewer fsyncs.
#[derive(Debug, Clone)]
pub struct DurabilityWindowRow {
    pub window_us: u64,
    pub commits: usize,
    pub commit_qps: f64,
    pub fsyncs: u64,
    pub commit_p50_ns: u64,
    pub commit_p99_ns: u64,
}

/// One recovery measurement: reopen a log holding `facts` committed
/// asserts and time the full ARIES replay.
#[derive(Debug, Clone)]
pub struct DurabilityRecoveryRow {
    pub facts: usize,
    pub log_bytes: u64,
    pub recovery_ms: f64,
    pub replayed: u64,
}

#[derive(Debug, Clone)]
pub struct DurabilityReport {
    pub windows: Vec<DurabilityWindowRow>,
    pub recovery: Vec<DurabilityRecoveryRow>,
    /// headline commit throughput: the widest group-commit window
    pub commit_qps: f64,
    /// headline recovery latency: the largest log
    pub recovery_ms: f64,
    /// facts present after recovery that were never durably committed —
    /// must be identically zero (tracked by the bench gate)
    pub recovery_torn_facts: u64,
    pub checkpoint_bytes_before: u64,
    pub checkpoint_bytes_after: u64,
}

/// E17: measures (a) committed-assert throughput against a **real file**
/// (true fsync cost) across group-commit windows, (b) recovery wall time
/// as a function of log size, and (c) checkpoint truncation. Recovery
/// correctness is asserted inline: the recovered EDB must hold exactly
/// the committed facts.
pub fn run_durability(quick: bool) -> DurabilityReport {
    use xsb_core::DurableLog;
    use xsb_storage::{shared_failpoint, CrashMode, MemVfs};

    let commits = if quick { 200 } else { 1000 };
    let mut windows = Vec::new();
    for window_us in [0u64, 100, 1000] {
        let path =
            std::env::temp_dir().join(format!("xsb_e17_{}_{window_us}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let log = Arc::new(DurableLog::open_path(&path).expect("open wal file"));
        let mut e = Engine::create_durable(":- dynamic f/1.\n", log).expect("create");
        e.set_group_commit_window_us(window_us);
        let t0 = Instant::now();
        for i in 0..commits {
            e.query(&format!("assert(f({i}))")).expect("assert");
        }
        e.wal_flush().expect("flush");
        let secs = t0.elapsed().as_secs_f64();
        let m = e.metrics();
        windows.push(DurabilityWindowRow {
            window_us,
            commits,
            commit_qps: commits as f64 / secs.max(1e-9),
            fsyncs: m.get(xsb_obs::Counter::WalFsyncs),
            commit_p50_ns: m.commit_latency.p50(),
            commit_p99_ns: m.commit_latency.quantile(0.99),
        });
        drop(e);
        let _ = std::fs::remove_file(&path);
    }

    let sizes: &[usize] = if quick {
        &[200, 800]
    } else {
        &[500, 2000, 8000]
    };
    let mut recovery = Vec::new();
    let mut torn_total = 0u64;
    let mut checkpoint_bytes = (0u64, 0u64);
    for (i, &facts) in sizes.iter().enumerate() {
        // build the log in memory (fsync cost is not what's measured here)
        let fs = shared_failpoint();
        let log = Arc::new(DurableLog::open(Box::new(fs.clone())).expect("open"));
        let mut e = Engine::create_durable(":- dynamic f/1.\n", log).expect("create");
        e.set_group_commit_window_us(10_000_000);
        for v in 0..facts {
            e.query(&format!("assert(f({v}))")).expect("assert");
        }
        e.wal_flush().expect("flush");
        drop(e);
        let img = fs
            .lock()
            .unwrap()
            .crash_image(CrashMode::Exact { at: u64::MAX });
        let log_bytes = img.len() as u64;
        let log2 = Arc::new(DurableLog::open(Box::new(MemVfs::from_bytes(img))).expect("reopen"));
        let t0 = Instant::now();
        let (mut e2, report) = Engine::open_durable(log2).expect("recover");
        let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
        // exactness check: |recovered| must equal |committed|
        let recovered = e2.count("f(X)").expect("count") as i64;
        torn_total += (recovered - facts as i64).unsigned_abs();
        recovery.push(DurabilityRecoveryRow {
            facts,
            log_bytes,
            recovery_ms,
            replayed: report.replayed,
        });
        if i == sizes.len() - 1 {
            checkpoint_bytes = e2.checkpoint().expect("checkpoint");
        }
    }

    DurabilityReport {
        commit_qps: windows.last().map_or(0.0, |w| w.commit_qps),
        recovery_ms: recovery.last().map_or(0.0, |r| r.recovery_ms),
        recovery_torn_facts: torn_total,
        checkpoint_bytes_before: checkpoint_bytes.0,
        checkpoint_bytes_after: checkpoint_bytes.1,
        windows,
        recovery,
    }
}

#[cfg(test)]
mod durability_tests {
    use super::*;

    #[test]
    fn durability_report_is_exact_and_checkpoint_shrinks() {
        let r = run_durability(true);
        assert_eq!(r.windows.len(), 3);
        assert_eq!(r.recovery.len(), 2);
        assert_eq!(r.recovery_torn_facts, 0, "recovered ≠ committed: {r:?}");
        assert!(r.commit_qps > 0.0);
        assert!(r.recovery_ms > 0.0);
        assert!(
            r.checkpoint_bytes_after < r.checkpoint_bytes_before,
            "checkpoint must truncate: {r:?}"
        );
        // the fsync-per-commit row syncs ~once per commit; wide windows
        // batch (strictly fewer fsyncs than commits)
        let w0 = &r.windows[0];
        assert!(w0.fsyncs as usize >= w0.commits, "window 0 defers: {r:?}");
        let w2 = &r.windows[2];
        assert!(
            (w2.fsyncs as usize) < w2.commits,
            "wide window failed to batch: {r:?}"
        );
    }
}

// ---------------------------------------------------------------------
// E18 — network serving: closed-loop load over the TCP front-end
// ---------------------------------------------------------------------

/// One load configuration of the E18 sweep: `connections` client
/// connections, each keeping `depth` requests pipelined on the wire.
#[derive(Debug, Clone)]
pub struct NetServingRow {
    pub connections: usize,
    /// pipeline depth per connection (requests kept in flight)
    pub depth: usize,
    /// requests completed across all connections
    pub requests: u64,
    /// closed-loop throughput (completed requests per second)
    pub qps: f64,
    /// client-observed request latency (send → completion frame), exact
    /// percentiles over every request in the row — not histogram buckets
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub busy: u64,
    pub errors: u64,
}

/// E18 report: the closed-loop sweep, an overload row proving admission
/// control sheds rather than queues, and the zero-tolerance health
/// counters the CI gate pins (stuck connections, protocol errors).
#[derive(Debug, Clone)]
pub struct NetServingReport {
    pub n: i64,
    pub rows: Vec<NetServingRow>,
    /// Headline closed-loop throughput: qps of the deepest
    /// connections × depth configuration.
    pub qps: f64,
    pub p50_ns: u64,
    pub p99_ns: u64,
    /// From the overload row: share of requests shed with `Busy` when the
    /// offered load exceeds the admission queue. Evidence the server
    /// degrades by rejecting, not by queueing without bound.
    pub rejection_rate: f64,
    /// Connections still open after every client closed and the servers
    /// shut down. Anything nonzero is a leak; the gate holds it at 0.
    pub stuck_connections: u64,
    /// Protocol errors across the whole run. The bench speaks the
    /// protocol correctly, so anything nonzero is a framing bug; the
    /// gate holds it at 0.
    pub protocol_errors: u64,
}

/// Exact percentile over a sorted latency sample.
fn exact_pct(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Drives one closed-loop row: every connection keeps `depth` count
/// queries in flight until it has completed its share of `total`.
/// Returns (latencies ns, busy, errors, wall secs).
fn drive_closed_loop(
    addr: std::net::SocketAddr,
    connections: usize,
    depth: usize,
    per_conn: usize,
    subgoals: usize,
) -> (Vec<u64>, u64, u64, f64) {
    use std::collections::VecDeque;
    use xsb_server::{Outcome, RemoteConn};
    let t0 = Instant::now();
    let handles: Vec<_> = (0..connections)
        .map(|c| {
            std::thread::spawn(move || {
                let mut conn = RemoteConn::connect(addr).expect("bench client connects");
                let mut latencies = Vec::with_capacity(per_conn);
                let mut busy = 0u64;
                let mut errors = 0u64;
                let mut sent = 0usize;
                let mut inflight: VecDeque<(u64, Instant)> = VecDeque::new();
                let goal = |i: usize| {
                    // spread connections across subgoals so the pool
                    // serves a mixed (but warm) working set
                    format!("path({}, X)", 1 + (c + i) % subgoals)
                };
                while sent < per_conn.min(depth) {
                    let id = conn.send_count(&goal(sent)).expect("send");
                    inflight.push_back((id, Instant::now()));
                    sent += 1;
                }
                while let Some((id, at)) = inflight.pop_front() {
                    match conn.wait(id).expect("bench request completes") {
                        Outcome::Complete { .. } => latencies.push(at.elapsed().as_nanos() as u64),
                        Outcome::Busy => busy += 1,
                        Outcome::Error(_) => errors += 1,
                    }
                    if sent < per_conn {
                        let id = conn.send_count(&goal(sent)).expect("send");
                        inflight.push_back((id, Instant::now()));
                        sent += 1;
                    }
                }
                conn.close();
                (latencies, busy, errors)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut busy = 0;
    let mut errors = 0;
    for h in handles {
        let (l, b, e) = h.join().expect("bench client thread");
        latencies.extend(l);
        busy += b;
        errors += e;
    }
    (latencies, busy, errors, secs(t0.elapsed()))
}

pub fn run_serving_net(quick: bool) -> NetServingReport {
    use xsb_core::PoolConfig;
    use xsb_server::{Driver, Outcome, RemoteConn, Server, ServerConfig};

    let n: i64 = if quick { 64 } else { 128 };
    let subgoals = 4usize;
    let per_conn = if quick { 40 } else { 200 };
    // single-core CI containers serve everything through 1-2 workers;
    // connection counts stay small so the sweep measures the wire and
    // scheduler, not thread thrash
    let configs: &[(usize, usize)] = if quick {
        &[(1, 1), (2, 4)]
    } else {
        &[(1, 1), (2, 2), (4, 4)]
    };

    let src = pool_program(n);
    let server = Server::start(
        &src,
        ServerConfig {
            pool: PoolConfig {
                workers: 2,
                ..PoolConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bench server starts");
    let addr = server.addr();

    // warm every subgoal's table first: the sweep measures wire + serving
    // overhead over completed tables, not first-call evaluation
    {
        let mut warm = RemoteConn::connect(addr).expect("warmup client connects");
        for k in 1..=subgoals {
            assert_eq!(
                warm.count(&format!("path({k}, X)")).expect("warmup query"),
                n as u64,
                "cycle closure is total"
            );
        }
        warm.close();
    }

    let mut rows = Vec::new();
    for &(connections, depth) in configs {
        let (mut latencies, busy, errors, wall) =
            drive_closed_loop(addr, connections, depth, per_conn, subgoals);
        latencies.sort_unstable();
        rows.push(NetServingRow {
            connections,
            depth,
            requests: latencies.len() as u64,
            qps: latencies.len() as f64 / wall.max(1e-9),
            p50_ns: exact_pct(&latencies, 0.50),
            p99_ns: exact_pct(&latencies, 0.99),
            busy,
            errors,
        });
    }
    let net_errors: u64 = rows.iter().map(|r| r.errors).sum();
    let closed_loop_busy: u64 = rows.iter().map(|r| r.busy).sum();
    assert_eq!(
        closed_loop_busy, 0,
        "unbounded-queue sweep must never see Busy"
    );
    let main_stats = server.stats();
    let mut stuck = server.shutdown() as u64;
    let mut protocol_errors = main_stats.protocol_errors;

    // overload: a separate server with a tiny admission queue, hit with
    // a burst far deeper than the queue — the surplus must come back as
    // typed Busy (shed), not wait in an unbounded line
    let overload_server = Server::start(
        &src,
        ServerConfig {
            pool: PoolConfig {
                workers: 1,
                queue_depth: Some(2),
                ..PoolConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("overload server starts");
    let mut c = RemoteConn::connect(overload_server.addr()).expect("overload client");
    let burst = 16;
    let ids: Vec<u64> = (0..burst)
        // cold heavy goal on the fresh pool keeps the worker busy while
        // the rest of the burst lands
        .map(|_| c.send_count("path(X, Y)").expect("overload send"))
        .collect();
    let mut shed = 0u64;
    let mut ran = 0u64;
    for id in ids {
        match c.wait(id).expect("overload harvest") {
            Outcome::Busy => shed += 1,
            Outcome::Complete { .. } => ran += 1,
            Outcome::Error(_) => protocol_errors += 1, // engine errors are bugs here too
        }
    }
    c.close();
    let overload_stats = overload_server.stats();
    stuck += overload_server.shutdown() as u64;
    protocol_errors += overload_stats.protocol_errors;
    assert!(ran >= 1, "overload burst must still complete some work");
    let rejection_rate = shed as f64 / burst as f64;

    let last = rows.last().expect("at least one load configuration");
    NetServingReport {
        n,
        qps: last.qps,
        p50_ns: last.p50_ns,
        p99_ns: last.p99_ns,
        rejection_rate,
        stuck_connections: stuck,
        protocol_errors: protocol_errors + net_errors,
        rows,
    }
}

#[cfg(test)]
mod serving_net_tests {
    use super::*;

    #[test]
    fn serving_net_report_is_healthy_end_to_end() {
        let r = run_serving_net(true);
        assert_eq!(r.rows.len(), 2, "{r:?}");
        for row in &r.rows {
            assert_eq!(row.requests, (row.connections * 40) as u64, "{r:?}");
            assert!(row.qps > 0.0, "{r:?}");
            assert!(row.p50_ns > 0 && row.p50_ns <= row.p99_ns, "{r:?}");
            assert_eq!(row.busy, 0, "{r:?}");
            assert_eq!(row.errors, 0, "{r:?}");
        }
        assert!(r.qps > 0.0);
        assert!(
            r.rejection_rate > 0.0,
            "overload burst must shed something: {r:?}"
        );
        assert_eq!(r.stuck_connections, 0, "{r:?}");
        assert_eq!(r.protocol_errors, 0, "{r:?}");
    }
}
