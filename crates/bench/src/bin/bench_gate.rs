//! Bench-regression gate for CI.
//!
//! ```text
//! cargo run -p xsb-bench --bin bench_gate -- BASELINE.json CURRENT.json [--tolerance PCT]
//! ```
//!
//! Compares a fresh `harness baseline --json` report against the committed
//! `BENCH_BASELINE.json` and fails (exit 1) if any tracked metric regressed
//! past its allowance. Every tracked metric carries a *tolerance
//! multiplier* on top of the base tolerance (`--tolerance`, default 20%):
//! deterministic cell counts are held tight (1% at the default), while
//! wall-clock timings and throughputs get headroom for scheduler noise.
//! The before/after table is printed whether or not the gate passes.
//!
//! Exit codes: 0 pass, 1 regression, 2 usage/IO/parse error.

use xsb_obs::Json;

/// One gate-tracked metric: where to find it in the report and how much it
/// is allowed to move in the bad direction.
struct Metric {
    name: &'static str,
    /// `true` when larger values are better (throughput, speedup, savings);
    /// `false` when smaller values are better (seconds, cells held).
    higher_is_better: bool,
    /// Multiplier on the base tolerance. Deterministic counters use a
    /// small multiplier; noisy wall-clock measurements a large one.
    tol_mult: f64,
    extract: fn(&Json) -> Option<f64>,
}

/// The tracked set. Adding a metric here makes the gate guard it on every
/// CI run once it appears in `BENCH_BASELINE.json`.
const METRICS: &[Metric] = &[
    Metric {
        name: "serving.cold_secs",
        higher_is_better: false,
        tol_mult: 2.5,
        extract: |r| num_at(r, &["serving", "cold_secs"]),
    },
    Metric {
        name: "serving.warm_secs",
        higher_is_better: false,
        tol_mult: 2.5,
        extract: |r| num_at(r, &["serving", "warm_secs"]),
    },
    Metric {
        name: "serving.warm_hit_rate",
        higher_is_better: true,
        tol_mult: 0.25,
        extract: |r| {
            let hits = num_at(r, &["serving", "table_hits"])?;
            let misses = num_at(r, &["serving", "table_misses"])?;
            Some(hits / (hits + misses).max(1.0))
        },
    },
    Metric {
        name: "factoring.cells_saved",
        higher_is_better: true,
        tol_mult: 0.05,
        extract: |r| sum_factoring(r, "answer_cells_saved", true),
    },
    Metric {
        name: "factoring.store_cells",
        higher_is_better: false,
        tol_mult: 0.05,
        extract: |r| sum_factoring(r, "store_cells", true),
    },
    Metric {
        // a ratio of two same-run timings, so machine speed divides out,
        // but phase-local scheduler noise does not — and the warm phase
        // is a small sample, so the ratio swings run to run. Wide
        // allowance; the deterministic dedup guarantee lives in
        // cold_dup_computes below.
        name: "concurrent.shared_speedup",
        higher_is_better: true,
        tol_mult: 2.5,
        extract: |r| num_at(r, &["concurrent", "shared_speedup"]),
    },
    Metric {
        name: "concurrent.warm_qps",
        higher_is_better: true,
        tol_mult: 2.5,
        extract: |r| {
            let rows = r.get("concurrent")?.get("rows")?;
            let Json::Arr(rows) = rows else { return None };
            as_f64(rows.last()?.get("warm_qps")?)
        },
    },
    Metric {
        // contended cold-phase throughput at the largest worker count:
        // the claim/wait dedup is what makes this scale with workers
        name: "concurrent.cold_qps",
        higher_is_better: true,
        tol_mult: 2.5,
        extract: |r| {
            let rows = r.get("concurrent")?.get("rows")?;
            let Json::Arr(rows) = rows else { return None };
            as_f64(rows.last()?.get("cold_qps")?)
        },
    },
    Metric {
        // deterministic: claim/wait holds duplicated cold computes at 0,
        // and a baseline of 0 makes ANY extra compute an infinite
        // regression — duplication cannot creep back unnoticed
        name: "concurrent.cold_dup_computes",
        higher_is_better: false,
        tol_mult: 0.05,
        extract: |r| {
            let rows = r.get("concurrent")?.get("rows")?;
            let Json::Arr(rows) = rows else { return None };
            as_f64(rows.last()?.get("cold_dup_computes")?)
        },
    },
    Metric {
        // warm-phase median serving latency at the largest worker count.
        // The histogram is log-bucketed, so at quick-run sample sizes the
        // reported percentile moves in ~2x steps — the allowance must
        // absorb one step of scheduler noise and still catch two.
        name: "concurrent.p50_ns",
        higher_is_better: false,
        tol_mult: 5.5,
        extract: |r| num_at(r, &["concurrent", "p50_ns"]),
    },
    Metric {
        // the tail is the noisiest tracked number, quantized like p50:
        // one 2x bucket step (+100%) passes, two steps (+300%) fail
        name: "concurrent.p99_ns",
        higher_is_better: false,
        tol_mult: 5.5,
        extract: |r| num_at(r, &["concurrent", "p99_ns"]),
    },
    // E16 emulator raw speed: instructions/sec counts unfused work units
    // retired per second on the fused (shipping) engine — higher is
    // better, and the per-workload wall time guards the same ground from
    // the other side. Best-of-reps timings still carry scheduler noise,
    // so both use the wide wall-clock multiplier.
    Metric {
        name: "emulator.e2_win_ips",
        higher_is_better: true,
        tol_mult: 2.5,
        extract: |r| emulator_field(r, "e2_win", "instructions_per_sec"),
    },
    Metric {
        name: "emulator.e6_path_ips",
        higher_is_better: true,
        tol_mult: 2.5,
        extract: |r| emulator_field(r, "e6_path", "instructions_per_sec"),
    },
    Metric {
        name: "emulator.e7_append_ips",
        higher_is_better: true,
        tol_mult: 2.5,
        extract: |r| emulator_field(r, "e7_append", "instructions_per_sec"),
    },
    Metric {
        name: "emulator.e2_win_query_ns",
        higher_is_better: false,
        tol_mult: 2.5,
        extract: |r| emulator_field(r, "e2_win", "query_time_ns"),
    },
    Metric {
        name: "emulator.e6_path_query_ns",
        higher_is_better: false,
        tol_mult: 2.5,
        extract: |r| emulator_field(r, "e6_path", "query_time_ns"),
    },
    Metric {
        name: "emulator.e7_append_query_ns",
        higher_is_better: false,
        tol_mult: 2.5,
        extract: |r| emulator_field(r, "e7_append", "query_time_ns"),
    },
    // E17 durability: commit throughput at the widest group-commit
    // window and recovery wall time for the largest log — both real
    // timings, so both use the wide wall-clock multiplier.
    Metric {
        name: "durability.commit_qps",
        higher_is_better: true,
        tol_mult: 2.5,
        extract: |r| num_at(r, &["durability", "commit_qps"]),
    },
    Metric {
        name: "durability.recovery_ms",
        higher_is_better: false,
        tol_mult: 2.5,
        extract: |r| num_at(r, &["durability", "recovery_ms"]),
    },
    Metric {
        // deterministic and zero-tolerance: a baseline of 0 makes any
        // torn fact after recovery an infinite regression
        name: "durability.recovery_torn_facts",
        higher_is_better: false,
        tol_mult: 0.0,
        extract: |r| num_at(r, &["durability", "recovery_torn_facts"]),
    },
    // E18 network serving: closed-loop throughput and client-observed
    // latency over loopback TCP. Real sockets and a real scheduler, so
    // the timings get the wide multipliers; the health counters are
    // deterministic and zero-tolerance.
    Metric {
        name: "serving_net.qps",
        higher_is_better: true,
        tol_mult: 2.5,
        extract: |r| num_at(r, &["serving_net", "qps"]),
    },
    Metric {
        name: "serving_net.p50_ns",
        higher_is_better: false,
        tol_mult: 5.5,
        extract: |r| num_at(r, &["serving_net", "p50_ns"]),
    },
    Metric {
        name: "serving_net.p99_ns",
        higher_is_better: false,
        tol_mult: 5.5,
        extract: |r| num_at(r, &["serving_net", "p99_ns"]),
    },
    Metric {
        // a baseline of 0 makes any framing error an infinite regression
        name: "serving_net.protocol_errors",
        higher_is_better: false,
        tol_mult: 0.0,
        extract: |r| num_at(r, &["serving_net", "protocol_errors"]),
    },
    Metric {
        // ditto for connections leaked past shutdown
        name: "serving_net.stuck_connections",
        higher_is_better: false,
        tol_mult: 0.0,
        extract: |r| num_at(r, &["serving_net", "stuck_connections"]),
    },
];

/// Looks up `field` in the emulator row whose `workload` matches.
fn emulator_field(r: &Json, workload: &str, field: &str) -> Option<f64> {
    let Json::Arr(rows) = r.get("emulator")? else {
        return None;
    };
    let row = rows
        .iter()
        .find(|row| row.get("workload") == Some(&Json::str(workload)))?;
    as_f64(row.get(field)?)
}

fn as_f64(j: &Json) -> Option<f64> {
    match j {
        Json::Int(i) => Some(*i as f64),
        Json::Num(f) => Some(*f),
        _ => None,
    }
}

fn num_at(r: &Json, path: &[&str]) -> Option<f64> {
    let mut cur = r;
    for key in path {
        cur = cur.get(key)?;
    }
    as_f64(cur)
}

/// Sums `field` over the factoring rows, optionally only the
/// substitution-factored stores (the gate guards the factored
/// representation, not the full-tuple baseline).
fn sum_factoring(r: &Json, field: &str, factored_only: bool) -> Option<f64> {
    let Json::Arr(rows) = r.get("factoring")? else {
        return None;
    };
    let mut total = 0.0;
    for row in rows {
        if factored_only && row.get("factored") != Some(&Json::Bool(true)) {
            continue;
        }
        total += as_f64(row.get(field)?)?;
    }
    Some(total)
}

#[derive(Debug, PartialEq, Clone, Copy)]
enum Status {
    Pass,
    Fail,
    /// Tracked metric absent from the baseline (newly added — it starts
    /// being enforced once the baseline is regenerated).
    NewMetric,
    /// Present in the baseline but missing from the current report: the
    /// run lost coverage, which fails the gate.
    LostMetric,
}

#[derive(Debug)]
struct Row {
    name: &'static str,
    base: Option<f64>,
    cur: Option<f64>,
    /// Signed change in the *bad* direction as a fraction of baseline
    /// (positive = regressed).
    regression: f64,
    allowed: f64,
    status: Status,
}

/// Compares the two reports over the tracked set. `base_tol` is the base
/// fractional tolerance (0.20 = 20%).
fn compare(baseline: &Json, current: &Json, base_tol: f64) -> Vec<Row> {
    METRICS
        .iter()
        .map(|m| {
            let base = (m.extract)(baseline);
            let cur = (m.extract)(current);
            let allowed = base_tol * m.tol_mult;
            let (regression, status) = match (base, cur) {
                (None, _) => (0.0, Status::NewMetric),
                (Some(_), None) => (f64::INFINITY, Status::LostMetric),
                (Some(b), Some(c)) => {
                    let delta = if m.higher_is_better { b - c } else { c - b };
                    let reg = if b.abs() > 1e-12 {
                        delta / b.abs()
                    } else if delta > 1e-12 {
                        f64::INFINITY
                    } else {
                        0.0
                    };
                    let status = if reg > allowed {
                        Status::Fail
                    } else {
                        Status::Pass
                    };
                    (reg, status)
                }
            };
            Row {
                name: m.name,
                base,
                cur,
                regression,
                allowed,
                status,
            }
        })
        .collect()
}

fn gate_passes(rows: &[Row]) -> bool {
    rows.iter()
        .all(|r| matches!(r.status, Status::Pass | Status::NewMetric))
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.6}"),
        None => "-".to_string(),
    }
}

fn print_table(rows: &[Row]) {
    println!(
        "{:<28} {:>14} {:>14} {:>10} {:>9}  status",
        "metric", "baseline", "current", "change", "allowed"
    );
    for r in rows {
        let change = if r.regression.is_finite() {
            // negative regression = the metric improved
            format!("{:+.1}%", -r.regression * 100.0)
        } else {
            "lost".to_string()
        };
        println!(
            "{:<28} {:>14} {:>14} {:>10} {:>8.0}%  {}",
            r.name,
            fmt_opt(r.base),
            fmt_opt(r.cur),
            change,
            r.allowed * 100.0,
            match r.status {
                Status::Pass => "ok",
                Status::Fail => "REGRESSED",
                Status::NewMetric => "new (unenforced)",
                Status::LostMetric => "MISSING",
            }
        );
    }
}

fn read_json(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_gate: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_gate: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.20;
    let mut files = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--tolerance" {
            let pct = argv.get(i + 1).and_then(|s| s.parse::<f64>().ok());
            match pct {
                Some(p) if p >= 0.0 => tolerance = p / 100.0,
                _ => {
                    eprintln!("bench_gate: --tolerance needs a non-negative percent");
                    std::process::exit(2);
                }
            }
            i += 2;
        } else {
            files.push(argv[i].clone());
            i += 1;
        }
    }
    if files.len() != 2 {
        eprintln!("usage: bench_gate BASELINE.json CURRENT.json [--tolerance PCT]");
        std::process::exit(2);
    }
    let baseline = read_json(&files[0]);
    let current = read_json(&files[1]);

    println!(
        "bench gate: {} vs {} (base tolerance {:.0}%)",
        files[0],
        files[1],
        tolerance * 100.0
    );
    let rows = compare(&baseline, &current, tolerance);
    print_table(&rows);
    if gate_passes(&rows) {
        println!("bench gate: PASS");
    } else {
        println!("bench gate: FAIL — at least one tracked metric regressed past tolerance");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal report with every tracked section populated.
    #[allow(clippy::too_many_arguments)]
    fn report(
        cold: f64,
        warm: f64,
        hits: i64,
        misses: i64,
        saved: i64,
        store: i64,
        speedup: f64,
        qps: f64,
    ) -> Json {
        Json::obj([
            (
                "serving",
                Json::obj([
                    ("cold_secs", Json::Num(cold)),
                    ("warm_secs", Json::Num(warm)),
                    ("table_hits", Json::Int(hits)),
                    ("table_misses", Json::Int(misses)),
                ]),
            ),
            (
                "factoring",
                Json::Arr(vec![
                    Json::obj([
                        ("factored", Json::Bool(true)),
                        ("answer_cells_saved", Json::Int(saved)),
                        ("store_cells", Json::Int(store)),
                    ]),
                    // the unfactored baseline row is ignored by the gate
                    Json::obj([
                        ("factored", Json::Bool(false)),
                        ("answer_cells_saved", Json::Int(0)),
                        ("store_cells", Json::Int(store * 3)),
                    ]),
                ]),
            ),
            (
                "concurrent",
                Json::obj([
                    ("shared_speedup", Json::Num(speedup)),
                    ("p50_ns", Json::Int(200_000)),
                    ("p99_ns", Json::Int(900_000)),
                    (
                        "rows",
                        Json::Arr(vec![Json::obj([
                            ("warm_qps", Json::Num(qps)),
                            ("cold_qps", Json::Num(qps / 3.0)),
                            ("cold_dup_computes", Json::Int(0)),
                        ])]),
                    ),
                ]),
            ),
            (
                "emulator",
                Json::Arr(
                    ["e2_win", "e6_path", "e7_append"]
                        .iter()
                        .map(|w| {
                            Json::obj([
                                ("workload", Json::str(*w)),
                                ("instructions_per_sec", Json::Num(qps * 2.0)),
                                ("query_time_ns", Json::Int(400_000)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "durability",
                Json::obj([
                    ("commit_qps", Json::Num(qps)),
                    ("recovery_ms", Json::Num(5.0)),
                    ("recovery_torn_facts", Json::Int(0)),
                ]),
            ),
            (
                "serving_net",
                Json::obj([
                    ("qps", Json::Num(qps / 2.0)),
                    ("p50_ns", Json::Int(300_000)),
                    ("p99_ns", Json::Int(1_200_000)),
                    ("protocol_errors", Json::Int(0)),
                    ("stuck_connections", Json::Int(0)),
                ]),
            ),
        ])
    }

    /// Overrides the concurrent latency percentiles of a report.
    fn with_latency(mut r: Json, p50: i64, p99: i64) -> Json {
        if let Some(Json::Obj(fields)) = match &mut r {
            Json::Obj(top) => top
                .iter_mut()
                .find(|(k, _)| k == "concurrent")
                .map(|(_, v)| v),
            _ => None,
        } {
            for (k, v) in fields.iter_mut() {
                if k == "p50_ns" {
                    *v = Json::Int(p50);
                }
                if k == "p99_ns" {
                    *v = Json::Int(p99);
                }
            }
        }
        r
    }

    fn base() -> Json {
        report(0.10, 0.01, 90, 10, 1000, 500, 4.0, 50_000.0)
    }

    #[test]
    fn identical_reports_pass() {
        let rows = compare(&base(), &base(), 0.20);
        assert!(gate_passes(&rows), "{rows:?}");
        assert!(rows.iter().all(|r| r.status == Status::Pass));
    }

    #[test]
    fn improvements_pass_even_when_large() {
        let cur = report(0.01, 0.001, 99, 1, 2000, 250, 10.0, 500_000.0);
        let rows = compare(&base(), &cur, 0.20);
        assert!(gate_passes(&rows), "{rows:?}");
    }

    #[test]
    fn time_regression_past_allowance_fails() {
        // cold_secs allowance is 20% × 2.5 = 50%; a 2x slowdown fails
        let cur = report(0.20, 0.01, 90, 10, 1000, 500, 4.0, 50_000.0);
        let rows = compare(&base(), &cur, 0.20);
        assert!(!gate_passes(&rows));
        let r = rows.iter().find(|r| r.name == "serving.cold_secs").unwrap();
        assert_eq!(r.status, Status::Fail);
    }

    #[test]
    fn time_noise_inside_allowance_passes() {
        // 30% slower is inside the 50% wall-clock allowance
        let cur = report(0.13, 0.012, 90, 10, 1000, 500, 4.0, 50_000.0);
        let rows = compare(&base(), &cur, 0.20);
        assert!(gate_passes(&rows), "{rows:?}");
    }

    #[test]
    fn deterministic_counter_is_held_tight() {
        // 3% fewer cells saved: inside 20% base tolerance, but the
        // factoring counter allows only 20% × 0.05 = 1%
        let cur = report(0.10, 0.01, 90, 10, 970, 500, 4.0, 50_000.0);
        let rows = compare(&base(), &cur, 0.20);
        let r = rows
            .iter()
            .find(|r| r.name == "factoring.cells_saved")
            .unwrap();
        assert_eq!(r.status, Status::Fail, "{rows:?}");
    }

    #[test]
    fn qps_regression_fails_and_direction_is_respected() {
        // warm_qps is higher-is-better with a 20% × 2.5 = 50% allowance:
        // dropping by 70% fails
        let cur = report(0.10, 0.01, 90, 10, 1000, 500, 4.0, 15_000.0);
        let rows = compare(&base(), &cur, 0.20);
        let r = rows
            .iter()
            .find(|r| r.name == "concurrent.warm_qps")
            .unwrap();
        assert_eq!(r.status, Status::Fail);
    }

    #[test]
    fn tail_latency_regression_fails() {
        // p99_ns allowance is 20% × 5.5 = 110% (one log-histogram bucket
        // step passes): quadrupling the tail — two bucket steps — fails,
        // while the p50 stays inside its allowance
        let cur = with_latency(base(), 220_000, 3_700_000);
        let rows = compare(&base(), &cur, 0.20);
        assert!(!gate_passes(&rows));
        let p99 = rows.iter().find(|r| r.name == "concurrent.p99_ns").unwrap();
        assert_eq!(p99.status, Status::Fail);
        let p50 = rows.iter().find(|r| r.name == "concurrent.p50_ns").unwrap();
        assert_eq!(p50.status, Status::Pass);
    }

    #[test]
    fn latency_improvement_passes() {
        let cur = with_latency(base(), 50_000, 100_000);
        let rows = compare(&base(), &cur, 0.20);
        assert!(gate_passes(&rows), "{rows:?}");
    }

    #[test]
    fn any_duplicated_cold_compute_fails_from_a_zero_baseline() {
        // the baseline tracks cold_dup_computes at 0: a zero-baseline
        // regression is infinite, so even one duplicated compute fails
        let mut cur = base();
        if let Json::Obj(top) = &mut cur {
            if let Some((_, Json::Obj(conc))) = top.iter_mut().find(|(k, _)| k == "concurrent") {
                if let Some((_, Json::Arr(rows))) = conc.iter_mut().find(|(k, _)| k == "rows") {
                    if let Some(Json::Obj(row)) = rows.last_mut() {
                        for (k, v) in row.iter_mut() {
                            if k == "cold_dup_computes" {
                                *v = Json::Int(1);
                            }
                        }
                    }
                }
            }
        }
        let rows = compare(&base(), &cur, 0.20);
        assert!(!gate_passes(&rows));
        let r = rows
            .iter()
            .find(|r| r.name == "concurrent.cold_dup_computes")
            .unwrap();
        assert_eq!(r.status, Status::Fail);
        assert!(r.regression.is_infinite());
    }

    #[test]
    fn a_single_torn_fact_fails_from_a_zero_baseline() {
        let mut cur = base();
        if let Json::Obj(top) = &mut cur {
            if let Some((_, Json::Obj(dur))) = top.iter_mut().find(|(k, _)| k == "durability") {
                for (k, v) in dur.iter_mut() {
                    if k == "recovery_torn_facts" {
                        *v = Json::Int(1);
                    }
                }
            }
        }
        let rows = compare(&base(), &cur, 0.20);
        assert!(!gate_passes(&rows));
        let r = rows
            .iter()
            .find(|r| r.name == "durability.recovery_torn_facts")
            .unwrap();
        assert_eq!(r.status, Status::Fail);
        assert!(r.regression.is_infinite());
    }

    #[test]
    fn a_single_protocol_error_or_stuck_connection_fails_from_zero() {
        for field in ["protocol_errors", "stuck_connections"] {
            let mut cur = base();
            if let Json::Obj(top) = &mut cur {
                if let Some((_, Json::Obj(net))) = top.iter_mut().find(|(k, _)| k == "serving_net")
                {
                    for (k, v) in net.iter_mut() {
                        if k == field {
                            *v = Json::Int(1);
                        }
                    }
                }
            }
            let rows = compare(&base(), &cur, 0.20);
            assert!(!gate_passes(&rows), "{field}: {rows:?}");
            let r = rows
                .iter()
                .find(|r| r.name == format!("serving_net.{field}"))
                .unwrap();
            assert_eq!(r.status, Status::Fail, "{field}");
            assert!(r.regression.is_infinite(), "{field}");
        }
    }

    #[test]
    fn net_serving_latency_tracks_like_other_percentiles() {
        // one log-bucket step of noise passes; a 4x tail regression fails
        let mut cur = base();
        if let Json::Obj(top) = &mut cur {
            if let Some((_, Json::Obj(net))) = top.iter_mut().find(|(k, _)| k == "serving_net") {
                for (k, v) in net.iter_mut() {
                    if k == "p99_ns" {
                        *v = Json::Int(5_000_000);
                    }
                }
            }
        }
        let rows = compare(&base(), &cur, 0.20);
        let r = rows
            .iter()
            .find(|r| r.name == "serving_net.p99_ns")
            .unwrap();
        assert_eq!(r.status, Status::Fail, "{rows:?}");
    }

    #[test]
    fn metric_missing_from_current_fails_as_lost_coverage() {
        let mut cur = base();
        if let Json::Obj(fields) = &mut cur {
            fields.retain(|(k, _)| k != "concurrent");
        }
        let rows = compare(&base(), &cur, 0.20);
        assert!(!gate_passes(&rows));
        assert!(rows
            .iter()
            .any(|r| r.status == Status::LostMetric && r.name.starts_with("concurrent.")));
    }

    #[test]
    fn metric_missing_from_baseline_is_unenforced() {
        let mut old = base();
        if let Json::Obj(fields) = &mut old {
            fields.retain(|(k, _)| k != "concurrent");
        }
        let rows = compare(&old, &base(), 0.20);
        assert!(gate_passes(&rows), "{rows:?}");
        assert!(rows.iter().any(|r| r.status == Status::NewMetric));
    }

    #[test]
    fn tolerance_flag_scales_every_allowance() {
        // at 100% base tolerance the 2x cold slowdown passes (allowance 250%)
        let cur = report(0.20, 0.01, 90, 10, 1000, 500, 4.0, 50_000.0);
        let rows = compare(&base(), &cur, 1.0);
        assert!(gate_passes(&rows), "{rows:?}");
    }
}
