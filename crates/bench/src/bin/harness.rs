//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run -p xsb-bench --bin harness --release [experiment] [--quick] [--json PATH]
//! ```
//!
//! Experiments: `table2 fig2 fig5-cycle fig5-fanout table3 slg-vs-sld
//! append hilog dynamic-vs-static bulkload serving factoring concurrent
//! emulator durability serving_net wfs all` (default `all`). `baseline`
//! runs just the gate-tracked subset (`serving factoring concurrent
//! emulator durability serving_net`) — it is
//! what `scripts/ci.sh` compares against `BENCH_BASELINE.json`, with the
//! noisy experiments (`concurrent`, `serving_net`) taken best-of-3 and
//! the rep count recorded as `noisy_reps` in the JSON. `trace` runs the reference workload
//! with span tracing and opcode profiling on; its `--json` artifact is a
//! Chrome trace-event object (load it at <https://ui.perfetto.dev>) with
//! the opcode profile attached under the extra `profile` key.
//!
//! `--json PATH` additionally writes a machine-readable report: per-
//! experiment wall-clock seconds, an engine-counter snapshot from an
//! instrumented reference workload (win/1 height 4 + path/2 over a
//! cycle), and — when the `serving`, `factoring`, or `concurrent`
//! experiments ran — their warm-vs-cold timings, table counters,
//! answer-store cell accounting, and pool throughput.

use std::time::Instant;
use xsb_bench::runners::*;
use xsb_bench::workloads::{cycle_edges, fanout_edges};
use xsb_core::Engine;
use xsb_obs::Json;
use xsb_wfs::{Truth, Wfs};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let json_path = argv.iter().position(|a| a == "--json").map(|i| {
        argv.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--json requires a path argument");
            std::process::exit(2);
        })
    });
    let arg = argv
        .iter()
        .filter(|a| !a.starts_with("--"))
        .find(|a| Some(a.as_str()) != json_path.as_deref())
        .cloned()
        .unwrap_or_else(|| "all".into());

    let mut timings: Vec<(String, f64)> = Vec::new();
    let mut serving_report: Option<ServingReport> = None;
    let mut emulator_rows: Option<Vec<EmulatorRow>> = None;
    let mut factoring_rows: Option<Vec<FactoringRow>> = None;
    let mut concurrent_report: Option<ConcurrentReport> = None;
    let mut durability_report: Option<DurabilityReport> = None;
    let mut net_report: Option<NetServingReport> = None;
    let mut noisy_reps: Option<usize> = None;
    let mut trace_json: Option<Json> = None;
    let mut run = |name: &str, f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        f();
        timings.push((name.to_string(), t0.elapsed().as_secs_f64()));
    };

    match arg.as_str() {
        "table2" => run("table2", &mut || table2(quick)),
        "fig2" => run("fig2", &mut fig2),
        "fig5-cycle" => run("fig5-cycle", &mut || fig5(true, quick)),
        "fig5-fanout" => run("fig5-fanout", &mut || fig5(false, quick)),
        "table3" => run("table3", &mut || table3(quick)),
        "slg-vs-sld" => run("slg-vs-sld", &mut || slg_vs_sld(quick)),
        "append" => run("append", &mut || append(quick)),
        "hilog" => run("hilog", &mut || hilog(quick)),
        "dynamic-vs-static" => run("dynamic-vs-static", &mut || dynamic_vs_static(quick)),
        "bulkload" => run("bulkload", &mut || bulkload(quick)),
        "serving" => run("serving", &mut || serving_report = Some(serving(quick))),
        "factoring" => run("factoring", &mut || factoring_rows = Some(factoring(quick))),
        "concurrent" => run("concurrent", &mut || {
            concurrent_report = Some(concurrent(quick))
        }),
        "emulator" => run("emulator", &mut || emulator_rows = Some(emulator(quick))),
        "durability" => run("durability", &mut || {
            durability_report = Some(durability(quick))
        }),
        "serving_net" => run("serving_net", &mut || net_report = Some(serving_net(quick))),
        "baseline" => {
            // the gate-tracked subset — ci.sh compares this run's JSON
            // against the committed BENCH_BASELINE.json. The two noisy
            // experiments (concurrent's shared_speedup is a ratio of two
            // small timed phases; the net serving closed loop runs over
            // real sockets) are taken best-of-N so one descheduled run
            // cannot flake the gate; deterministic counters are
            // unaffected by the repetition.
            const NOISY_REPS: usize = 3;
            noisy_reps = Some(NOISY_REPS);
            run("serving", &mut || serving_report = Some(serving(quick)));
            run("factoring", &mut || factoring_rows = Some(factoring(quick)));
            run("concurrent", &mut || {
                concurrent_report = (0..NOISY_REPS)
                    .map(|_| concurrent(quick))
                    .max_by(|a, b| a.shared_speedup.total_cmp(&b.shared_speedup))
            });
            run("emulator", &mut || emulator_rows = Some(emulator(quick)));
            run("durability", &mut || {
                durability_report = Some(durability(quick))
            });
            run("serving_net", &mut || {
                net_report = (0..NOISY_REPS)
                    .map(|_| serving_net(quick))
                    .max_by(|a, b| a.qps.total_cmp(&b.qps))
            });
        }
        "trace" => run("trace", &mut || trace_json = Some(trace_experiment())),
        "wfs" => run("wfs", &mut wfs),
        "ablation-tables" => run("ablation-tables", &mut || ablation_tables(quick)),
        "ablation-seminaive" => run("ablation-seminaive", &mut || ablation_seminaive(quick)),
        "all" => {
            run("table2", &mut || table2(quick));
            run("fig2", &mut fig2);
            run("fig5-cycle", &mut || fig5(true, quick));
            run("fig5-fanout", &mut || fig5(false, quick));
            run("table3", &mut || table3(quick));
            run("slg-vs-sld", &mut || slg_vs_sld(quick));
            run("append", &mut || append(quick));
            run("hilog", &mut || hilog(quick));
            run("dynamic-vs-static", &mut || dynamic_vs_static(quick));
            run("bulkload", &mut || bulkload(quick));
            run("serving", &mut || serving_report = Some(serving(quick)));
            run("factoring", &mut || factoring_rows = Some(factoring(quick)));
            run("concurrent", &mut || {
                concurrent_report = Some(concurrent(quick))
            });
            run("emulator", &mut || emulator_rows = Some(emulator(quick)));
            run("durability", &mut || {
                durability_report = Some(durability(quick))
            });
            run("serving_net", &mut || net_report = Some(serving_net(quick)));
            run("ablation-tables", &mut || ablation_tables(quick));
            run("ablation-seminaive", &mut || ablation_seminaive(quick));
            run("wfs", &mut wfs);
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            std::process::exit(2);
        }
    }

    if let Some(path) = json_path {
        // the trace experiment's artifact IS the Chrome trace object
        let report = trace_json.unwrap_or_else(|| {
            json_report(
                &arg,
                quick,
                noisy_reps,
                &timings,
                serving_report.as_ref(),
                factoring_rows.as_deref(),
                concurrent_report.as_ref(),
                emulator_rows.as_deref(),
                durability_report.as_ref(),
                net_report.as_ref(),
            )
        });
        if let Err(e) = std::fs::write(&path, format!("{report}\n")) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote JSON report to {path}");
    }
}

/// Builds the `--json` payload: per-experiment wall times plus an engine
/// metrics snapshot from a small instrumented reference workload.
#[allow(clippy::too_many_arguments)] // one optional section per experiment
fn json_report(
    experiment: &str,
    quick: bool,
    noisy_reps: Option<usize>,
    timings: &[(String, f64)],
    serving: Option<&ServingReport>,
    factoring: Option<&[FactoringRow]>,
    concurrent: Option<&ConcurrentReport>,
    emulator: Option<&[EmulatorRow]>,
    durability: Option<&DurabilityReport>,
    net: Option<&NetServingReport>,
) -> Json {
    let experiments = Json::Arr(
        timings
            .iter()
            .map(|(name, secs)| {
                Json::obj([
                    ("name", Json::str(name.clone())),
                    ("wall_secs", Json::Num(*secs)),
                ])
            })
            .collect(),
    );
    let (counters, profile) = reference_snapshot();
    let mut fields = vec![
        ("schema", Json::Int(1)),
        ("experiment", Json::str(experiment)),
        ("quick", Json::Bool(quick)),
        ("experiments", experiments),
        ("engine_counters", counters),
        ("opcode_profile", profile),
    ];
    if let Some(reps) = noisy_reps {
        // how many runs the noisy experiments were taken best-of
        fields.insert(3, ("noisy_reps", Json::Int(reps as i64)));
    }
    if let Some(s) = serving {
        fields.push((
            "serving",
            Json::obj([
                ("n", Json::Int(s.n)),
                ("warm_queries", Json::Int(s.warm_queries as i64)),
                ("cold_secs", Json::Num(s.cold_secs)),
                ("warm_secs", Json::Num(s.warm_secs)),
                ("warm_speedup", Json::Num(s.warm_speedup)),
                (
                    "invalidate_requery_secs",
                    Json::Num(s.invalidate_requery_secs),
                ),
                ("table_hits", Json::Int(s.table_hits as i64)),
                ("table_misses", Json::Int(s.table_misses as i64)),
                ("table_invalidations", Json::Int(s.invalidations as i64)),
                ("table_evictions", Json::Int(s.evictions as i64)),
            ]),
        ));
    }
    if let Some(rows) = factoring {
        fields.push((
            "factoring",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("n", Json::Int(r.n)),
                            ("index", Json::str(r.index)),
                            ("factored", Json::Bool(r.factored)),
                            ("store_cells", Json::Int(r.store_cells as i64)),
                            ("answer_cells_factored", Json::Int(r.cells_factored as i64)),
                            ("answer_cells_full", Json::Int(r.cells_full as i64)),
                            ("answer_cells_saved", Json::Int(r.cells_saved as i64)),
                            ("cold_secs", Json::Num(r.cold_secs)),
                            ("warm_secs", Json::Num(r.warm_secs)),
                            ("warm_answers_per_sec", Json::Num(r.warm_answers_per_sec)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    if let Some(c) = concurrent {
        fields.push((
            "concurrent",
            Json::obj([
                ("n", Json::Int(c.n)),
                ("subgoals", Json::Int(c.subgoals as i64)),
                ("warm_reps", Json::Int(c.warm_reps as i64)),
                ("churn_rounds", Json::Int(c.churn_rounds as i64)),
                ("shared_speedup", Json::Num(c.shared_speedup)),
                ("warm_scaling", Json::Num(c.warm_scaling)),
                ("p50_ns", Json::Int(c.p50_ns as i64)),
                ("p99_ns", Json::Int(c.p99_ns as i64)),
                (
                    "rows",
                    Json::Arr(
                        c.rows
                            .iter()
                            .map(|r| {
                                Json::obj([
                                    ("workers", Json::Int(r.workers as i64)),
                                    ("cold_qps", Json::Num(r.cold_qps)),
                                    ("cold_dup_computes", Json::Int(r.cold_dup_computes as i64)),
                                    ("claim_waits", Json::Int(r.claim_waits as i64)),
                                    ("warm_qps", Json::Num(r.warm_qps)),
                                    ("churn_qps", Json::Num(r.churn_qps)),
                                    ("shared_hits", Json::Int(r.shared_hits as i64)),
                                    ("shared_publishes", Json::Int(r.shared_publishes as i64)),
                                    (
                                        "shared_invalidations",
                                        Json::Int(r.shared_invalidations as i64),
                                    ),
                                    ("cold_p50_ns", Json::Int(r.cold_p50_ns as i64)),
                                    ("cold_p99_ns", Json::Int(r.cold_p99_ns as i64)),
                                    ("warm_p50_ns", Json::Int(r.warm_p50_ns as i64)),
                                    ("warm_p99_ns", Json::Int(r.warm_p99_ns as i64)),
                                    ("churn_p50_ns", Json::Int(r.churn_p50_ns as i64)),
                                    ("churn_p99_ns", Json::Int(r.churn_p99_ns as i64)),
                                    ("queue_p50_ns", Json::Int(r.queue_p50_ns as i64)),
                                    ("queue_p99_ns", Json::Int(r.queue_p99_ns as i64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    if let Some(rows) = emulator {
        fields.push((
            "emulator",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("workload", Json::str(r.workload)),
                            ("work_instructions", Json::Int(r.work_instructions as i64)),
                            ("fused_instructions", Json::Int(r.fused_instructions as i64)),
                            ("query_time_ns", Json::Int(r.query_time_ns as i64)),
                            (
                                "unfused_query_time_ns",
                                Json::Int(r.unfused_query_time_ns as i64),
                            ),
                            ("instructions_per_sec", Json::Num(r.instructions_per_sec)),
                            (
                                "unfused_instructions_per_sec",
                                Json::Num(r.unfused_instructions_per_sec),
                            ),
                            ("speedup", Json::Num(r.speedup)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    if let Some(d) = durability {
        fields.push((
            "durability",
            Json::obj([
                ("commit_qps", Json::Num(d.commit_qps)),
                ("recovery_ms", Json::Num(d.recovery_ms)),
                (
                    "recovery_torn_facts",
                    Json::Int(d.recovery_torn_facts as i64),
                ),
                (
                    "checkpoint_bytes_before",
                    Json::Int(d.checkpoint_bytes_before as i64),
                ),
                (
                    "checkpoint_bytes_after",
                    Json::Int(d.checkpoint_bytes_after as i64),
                ),
                (
                    "windows",
                    Json::Arr(
                        d.windows
                            .iter()
                            .map(|w| {
                                Json::obj([
                                    ("window_us", Json::Int(w.window_us as i64)),
                                    ("commits", Json::Int(w.commits as i64)),
                                    ("commit_qps", Json::Num(w.commit_qps)),
                                    ("fsyncs", Json::Int(w.fsyncs as i64)),
                                    ("commit_p50_ns", Json::Int(w.commit_p50_ns as i64)),
                                    ("commit_p99_ns", Json::Int(w.commit_p99_ns as i64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "recovery",
                    Json::Arr(
                        d.recovery
                            .iter()
                            .map(|r| {
                                Json::obj([
                                    ("facts", Json::Int(r.facts as i64)),
                                    ("log_bytes", Json::Int(r.log_bytes as i64)),
                                    ("recovery_ms", Json::Num(r.recovery_ms)),
                                    ("replayed", Json::Int(r.replayed as i64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    if let Some(s) = net {
        fields.push((
            "serving_net",
            Json::obj([
                ("n", Json::Int(s.n)),
                ("qps", Json::Num(s.qps)),
                ("p50_ns", Json::Int(s.p50_ns as i64)),
                ("p99_ns", Json::Int(s.p99_ns as i64)),
                ("rejection_rate", Json::Num(s.rejection_rate)),
                ("stuck_connections", Json::Int(s.stuck_connections as i64)),
                ("protocol_errors", Json::Int(s.protocol_errors as i64)),
                (
                    "rows",
                    Json::Arr(
                        s.rows
                            .iter()
                            .map(|r| {
                                Json::obj([
                                    ("connections", Json::Int(r.connections as i64)),
                                    ("depth", Json::Int(r.depth as i64)),
                                    ("requests", Json::Int(r.requests as i64)),
                                    ("qps", Json::Num(r.qps)),
                                    ("p50_ns", Json::Int(r.p50_ns as i64)),
                                    ("p99_ns", Json::Int(r.p99_ns as i64)),
                                    ("busy", Json::Int(r.busy as i64)),
                                    ("errors", Json::Int(r.errors as i64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    Json::obj(fields)
}

/// The instrumented reference workload: win/1 on a height-4 binary tree
/// and path/2 on a 64-node cycle.
fn reference_src() -> String {
    let mut src = String::from(":- table win/1.\nwin(X) :- move(X,Y), tnot win(Y).\n");
    for n in 1i64..=15 {
        src.push_str(&format!("move({n},{}). move({n},{}).\n", 2 * n, 2 * n + 1));
    }
    src.push_str(":- table path/2.\npath(X,Y) :- path(X,Z), edge(Z,Y).\npath(X,Y) :- edge(X,Y).\n");
    for i in 1i64..=64 {
        src.push_str(&format!("edge({i},{}).\n", if i == 64 { 1 } else { i + 1 }));
    }
    src
}

/// Snapshots every counter from a default-config run of the reference
/// workload (profiling off, so `query_time_ns` reflects the shipping hot
/// path), then the opcode profile from a second, profiled run.
fn reference_snapshot() -> (Json, Json) {
    let mut e = Engine::new();
    e.consult(&reference_src())
        .expect("reference workload consults");
    e.holds("win(1)").expect("win/1 evaluates");
    e.count("path(1, X)").expect("path/2 evaluates");
    let counters = e.metrics_json();
    e.reset_metrics();
    e.abolish_all_tables();
    e.set_profiling(true);
    e.holds("win(1)").expect("win/1 re-evaluates");
    e.count("path(1, X)").expect("path/2 re-evaluates");
    (counters, e.profile_json())
}

/// The `trace` experiment: the reference workload with span tracing and
/// profiling on. Returns a Chrome trace-event object — `traceEvents` as
/// Perfetto expects, with the opcode profile under the (legal) extra
/// top-level key `profile`.
fn trace_experiment() -> Json {
    header("trace — span-traced reference workload (open the JSON in Perfetto)");
    let mut e = Engine::new();
    e.consult(&reference_src())
        .expect("reference workload consults");
    e.set_tracing(true);
    e.set_profiling(true);
    e.holds("win(1)").expect("win/1 evaluates");
    e.count("path(1, X)").expect("path/2 evaluates");
    let mut trace = e.chrome_trace_json();
    if let Json::Obj(fields) = &mut trace {
        fields.push(("profile".to_string(), e.profile_json()));
    }
    let spans = trace
        .get("spanCount")
        .map(|j| format!("{j}"))
        .unwrap_or_default();
    println!("recorded {spans} spans over 2 queries (pass --json PATH to export)");
    trace
}

fn header(title: &str) {
    println!();
    println!("== {title} ==");
}

fn table2(quick: bool) {
    header("E1 / Table 2 — win/1 on complete binary trees (times ÷ E-Neg time)");
    println!("paper:   height      6     7     8     9    10    11");
    println!("paper:   SLG       4.5  4.25   7.6   8.2  15.4  15.7");
    println!("paper:   SLDNF      .3   .24   .22   .24   .24   .23");
    println!("paper:   E-Neg       1     1     1     1     1     1");
    let heights: &[u32] = if quick {
        &[6, 7, 8]
    } else {
        &[6, 7, 8, 9, 10, 11]
    };
    let reps = if quick { 2 } else { 3 };
    let rows = run_table2(heights, reps);
    print!("{:18}", "measured: height");
    for r in &rows {
        print!("{:>8}", r.height);
    }
    println!();
    print!("{:18}", "measured: SLG");
    for r in &rows {
        print!("{:>8.2}", r.slg_ratio);
    }
    println!();
    print!("{:18}", "measured: SLDNF");
    for r in &rows {
        print!("{:>8.2}", r.sldnf_ratio);
    }
    println!();
    print!("{:18}", "measured: E-Neg");
    for _ in &rows {
        print!("{:>8.2}", 1.0);
    }
    println!();
    print!("{:18}", "E-Neg secs");
    for r in &rows {
        print!("{:>8.4}", r.eneg_secs);
    }
    println!();
}

fn fig2() {
    header("E2 / Figure 2 — subgoals evaluated for win(1) over binary trees");
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "height", "SLDNF calls", "G(n)", "E-Neg subg", "SLG subg", "2^(h+1)-1"
    );
    for r in run_fig2(&[2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]) {
        println!(
            "{:>7} {:>12} {:>12.1} {:>12} {:>10} {:>10}",
            r.height, r.sldnf_calls, r.g_formula, r.eneg_subgoals, r.slg_subgoals, r.all_nodes
        );
    }
    println!("(paper: height 4 evaluates 13 of 31 subgoals under SLDNF; SLG all 31)");
}

fn fig5(cycle: bool, quick: bool) {
    type Shape = fn(i64) -> Vec<(i64, i64)>;
    let (name, shape): (&str, Shape) = if cycle {
        ("E3 / Figure 5 left — path/2 over cycles", cycle_edges)
    } else {
        ("E4 / Figure 5 right — path/2 over fanout", fanout_edges)
    };
    header(name);
    let sizes: &[i64] = if quick {
        &[8, 64, 256]
    } else {
        &[8, 32, 128, 512, 1024, 2048]
    };
    let reps = if quick { 2 } else { 3 };
    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>10} {:>10}",
        "n", "xsb (s)", "coral-def (s)", "coral-fac (s)", "def/xsb", "fac/xsb"
    );
    for r in run_fig5(sizes, shape, reps) {
        println!(
            "{:>6} {:>12.6} {:>14.6} {:>14.6} {:>10.1} {:>10.1}",
            r.n,
            r.xsb_secs,
            r.coral_def_secs,
            r.coral_fac_secs,
            r.coral_def_secs / r.xsb_secs,
            r.coral_fac_secs / r.xsb_secs
        );
    }
    println!("(paper: XSB about an order of magnitude faster than CORAL)");
}

fn table3(quick: bool) {
    header("E5 / Table 3 — approximate relative indexed-join speeds");
    println!("paper:  Quintus 1 | XSB 3 | LDL 8 | CORAL 24 | Sybase 100");
    let n = if quick { 2_000 } else { 10_000 };
    let reps = if quick { 2 } else { 3 };
    println!("join of |R| = |S| = {n}:");
    for r in run_table3(n, reps) {
        println!(
            "{:32} {:>12.6}s  relative {:>8.1}",
            r.system, r.secs, r.relative
        );
    }
}

fn slg_vs_sld(quick: bool) {
    header("E6 / §5 — tabled left-recursion vs SLD right-recursion (chains & trees)");
    println!("paper: SLG left recursion takes ~20-25% longer than SLD right recursion");
    let chains: &[i64] = if quick {
        &[256, 1024]
    } else {
        &[128, 512, 2048, 4096]
    };
    let trees: &[u32] = if quick { &[8] } else { &[8, 10, 12] };
    let reps = if quick { 2 } else { 3 };
    println!(
        "{:>12} {:>12} {:>12} {:>8}",
        "workload", "SLD (s)", "SLG (s)", "ratio"
    );
    for r in run_slg_vs_sld(chains, trees, reps) {
        println!(
            "{:>12} {:>12.6} {:>12.6} {:>8.2}",
            r.workload, r.sld_secs, r.slg_secs, r.ratio
        );
    }
}

fn append(quick: bool) {
    header("E7 / §5 — append/3: SLD linear, SLG quadratic (no ground-copy optimization)");
    let lens: &[i64] = if quick {
        &[64, 128, 256]
    } else {
        &[64, 128, 256, 512, 1024]
    };
    let reps = if quick { 2 } else { 3 };
    println!(
        "{:>6} {:>12} {:>12} {:>10}",
        "len", "SLD (s)", "SLG (s)", "slg/sld"
    );
    for r in run_append(lens, reps) {
        println!(
            "{:>6} {:>12.6} {:>12.6} {:>10.1}",
            r.len,
            r.sld_secs,
            r.slg_secs,
            r.slg_secs / r.sld_secs
        );
    }
}

fn hilog(quick: bool) {
    header("E8 / §3.2, §4.7 — HiLog overhead on chain traversal");
    println!("paper: compiled HiLog executes only marginally slower than first-order");
    let sizes: &[i64] = if quick { &[256] } else { &[256, 1024, 4096] };
    let reps = if quick { 2 } else { 3 };
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "n", "first-order", "specialized", "generic", "spec/fo", "gen/fo"
    );
    for r in run_hilog(sizes, reps) {
        println!(
            "{:>6} {:>14.6} {:>14.6} {:>14.6} {:>10.2} {:>10.2}",
            r.n,
            r.first_order_secs,
            r.specialized_secs,
            r.generic_secs,
            r.specialized_secs / r.first_order_secs,
            r.generic_secs / r.first_order_secs
        );
    }
}

fn dynamic_vs_static(quick: bool) {
    header("E9 / §4.2 — dynamic (asserted) facts vs compiled facts");
    println!("paper: dynamic facts execute at essentially the same speed as compiled");
    let n = if quick { 5_000 } else { 20_000 };
    let reps = if quick { 2 } else { 3 };
    let r = run_dynamic_vs_static(n, reps);
    println!(
        "n = {}: static {:.6}s   dynamic {:.6}s   dynamic/static = {:.2}",
        r.n, r.static_secs, r.dynamic_secs, r.ratio
    );
}

fn bulkload(quick: bool) {
    header("E10 / §4.6 — bulk load: general reader vs formatted read vs object file");
    println!("paper: object file load ≈ 12x faster than formatted read + assert");
    let n = if quick { 10_000 } else { 100_000 };
    let reps = if quick { 1 } else { 2 };
    let r = run_bulkload(n, reps);
    println!(
        "n = {}: general {:.4}s   formatted {:.4}s   object {:.4}s",
        r.n, r.general_secs, r.formatted_secs, r.object_secs
    );
    println!(
        "ratios: general/formatted = {:.1}   formatted/object = {:.1}",
        r.general_secs / r.formatted_secs,
        r.formatted_secs / r.object_secs
    );
}

fn serving(quick: bool) -> ServingReport {
    header("E13 — repeat-query serving: persistent tables across queries");
    println!("warm repeats answer from the completed table; an assert invalidates");
    println!("exactly the dependent tables; a small budget bounds the table space");
    let n = if quick { 128 } else { 512 };
    let warm_queries = if quick { 10 } else { 50 };
    let r = run_serving(n, warm_queries);
    println!(
        "n = {}: cold {:.6}s   warm {:.6}s (avg of {})   speedup {:.1}x",
        r.n, r.cold_secs, r.warm_secs, r.warm_queries, r.warm_speedup
    );
    println!(
        "assert + re-query {:.6}s (recomputes instead of serving stale answers)",
        r.invalidate_requery_secs
    );
    println!(
        "counters: hits {}  misses {}  invalidations {}  evictions {}",
        r.table_hits, r.table_misses, r.invalidations, r.evictions
    );
    r
}

fn factoring(quick: bool) -> Vec<FactoringRow> {
    header("E14 / §4.5 — substitution factoring: answer store and warm serving of path(1,X)");
    println!("answers store only the bindings of the call's distinct variables;");
    println!("the full-tuple baseline re-expands the call skeleton into every answer");
    let sizes: &[i64] = if quick { &[64, 256] } else { &[64, 256, 1024] };
    let warm_reps = if quick { 3 } else { 5 };
    let rows = run_factoring(sizes, warm_reps);
    println!(
        "{:>6} {:>6} {:>10} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "n", "index", "store", "store cells", "saved cells", "cold (s)", "warm (s)", "warm ans/s"
    );
    for r in &rows {
        println!(
            "{:>6} {:>6} {:>10} {:>12} {:>12} {:>12.6} {:>12.6} {:>14.0}",
            r.n,
            r.index,
            if r.factored { "factored" } else { "full" },
            r.store_cells,
            r.cells_saved,
            r.cold_secs,
            r.warm_secs,
            r.warm_answers_per_sec
        );
    }
    rows
}

fn concurrent(quick: bool) -> ConcurrentReport {
    header("E15 — concurrent serving: shared-table engine pool");
    println!("contended cold: every worker races every first call — claim/wait dedups");
    println!("to one compute per subgoal; warm hits then serve on every worker, and");
    println!("consult_all churn invalidates the tables everywhere through the epoch bump");
    let n = if quick { 96 } else { 256 };
    let subgoals = if quick { 6 } else { 12 };
    let warm_reps = if quick { 3 } else { 5 };
    let churn_rounds = if quick { 2 } else { 4 };
    let r = run_concurrent(n, &[1, 2, 4], subgoals, warm_reps, churn_rounds);
    println!(
        "{:>8} {:>12} {:>8} {:>12} {:>12} {:>8} {:>10} {:>8} {:>10} {:>10} {:>10}",
        "workers",
        "cold qps",
        "dup",
        "warm qps",
        "churn qps",
        "hits",
        "publishes",
        "invals",
        "p50 (µs)",
        "p99 (µs)",
        "queue p99"
    );
    for row in &r.rows {
        println!(
            "{:>8} {:>12.0} {:>8} {:>12.0} {:>12.0} {:>8} {:>10} {:>8} {:>10.0} {:>10.0} {:>10.0}",
            row.workers,
            row.cold_qps,
            row.cold_dup_computes,
            row.warm_qps,
            row.churn_qps,
            row.shared_hits,
            row.shared_publishes,
            row.shared_invalidations,
            row.warm_p50_ns as f64 / 1e3,
            row.warm_p99_ns as f64 / 1e3,
            row.queue_p99_ns as f64 / 1e3
        );
    }
    println!(
        "shared speedup (warm vs cold at {} workers): {:.1}x   warm scaling (vs 1 worker): {:.2}x",
        r.rows.last().map_or(0, |row| row.workers),
        r.shared_speedup,
        r.warm_scaling
    );
    println!("(warm scaling reflects host core count; shared speedup does not)");
    r
}

fn emulator(quick: bool) -> Vec<EmulatorRow> {
    header("E16 — emulator raw speed: fused superinstructions vs plain dispatch");
    println!("instructions/sec counts *unfused* work units retired per second, so");
    println!("the fused column credits superinstructions for retiring several at once");
    let rows = run_emulator(quick);
    println!(
        "{:>10} {:>14} {:>12} {:>14} {:>14} {:>14} {:>14} {:>8}",
        "workload",
        "work instrs",
        "fused disp",
        "before (ns)",
        "after (ns)",
        "before ips",
        "after ips",
        "speedup"
    );
    for r in &rows {
        println!(
            "{:>10} {:>14} {:>12} {:>14} {:>14} {:>14.0} {:>14.0} {:>8.2}",
            r.workload,
            r.work_instructions,
            r.fused_instructions,
            r.unfused_query_time_ns,
            r.query_time_ns,
            r.unfused_instructions_per_sec,
            r.instructions_per_sec,
            r.speedup
        );
    }
    rows
}

fn durability(quick: bool) -> DurabilityReport {
    header("E17 — durable EDB: group commit, crash recovery, checkpoint");
    println!("commit throughput is measured against a real file (true fsync cost);");
    println!("recovery replays the WAL through full ARIES analysis/redo/undo");
    let r = run_durability(quick);
    println!(
        "{:>10} {:>10} {:>12} {:>8} {:>12} {:>12}",
        "window µs", "commits", "commit qps", "fsyncs", "p50 (µs)", "p99 (µs)"
    );
    for w in &r.windows {
        println!(
            "{:>10} {:>10} {:>12.0} {:>8} {:>12.1} {:>12.1}",
            w.window_us,
            w.commits,
            w.commit_qps,
            w.fsyncs,
            w.commit_p50_ns as f64 / 1e3,
            w.commit_p99_ns as f64 / 1e3
        );
    }
    println!(
        "{:>10} {:>12} {:>14} {:>10}",
        "facts", "log bytes", "recovery (ms)", "replayed"
    );
    for row in &r.recovery {
        println!(
            "{:>10} {:>12} {:>14.2} {:>10}",
            row.facts, row.log_bytes, row.recovery_ms, row.replayed
        );
    }
    println!(
        "checkpoint truncation: {} -> {} bytes   torn facts after recovery: {}",
        r.checkpoint_bytes_before, r.checkpoint_bytes_after, r.recovery_torn_facts
    );
    r
}

fn serving_net(quick: bool) -> NetServingReport {
    header("E18 — network serving: closed-loop load over the TCP front-end");
    println!("clients pipeline count queries over loopback TCP (port 0, kernel-");
    println!("assigned); an overload burst against a tiny admission queue must be");
    println!("shed with typed Busy — and zero stuck connections or protocol errors");
    let r = run_serving_net(quick);
    println!(
        "{:>6} {:>7} {:>10} {:>12} {:>12} {:>12} {:>6} {:>7}",
        "conns", "depth", "requests", "qps", "p50 (µs)", "p99 (µs)", "busy", "errors"
    );
    for row in &r.rows {
        println!(
            "{:>6} {:>7} {:>10} {:>12.0} {:>12.1} {:>12.1} {:>6} {:>7}",
            row.connections,
            row.depth,
            row.requests,
            row.qps,
            row.p50_ns as f64 / 1e3,
            row.p99_ns as f64 / 1e3,
            row.busy,
            row.errors
        );
    }
    println!(
        "overload rejection rate {:.0}%   stuck connections {}   protocol errors {}",
        r.rejection_rate * 100.0,
        r.stuck_connections,
        r.protocol_errors
    );
    r
}

fn ablation_tables(quick: bool) {
    header("Ablation / §4.5 — hash vs trie table indexing (path over full cycle closure)");
    println!("paper: trie indexing \"will both decrease the space and the time necessary for saving answers\"");
    let sizes: &[i64] = if quick {
        &[32, 64]
    } else {
        &[32, 64, 128, 256]
    };
    let reps = if quick { 2 } else { 3 };
    println!(
        "{:>6} {:>12} {:>12} {:>8} {:>12} {:>12} {:>8} {:>12} {:>12}",
        "n",
        "hash (s)",
        "trie (s)",
        "t/h",
        "hash cells",
        "trie cells",
        "space",
        "hash unfac",
        "trie unfac"
    );
    for r in run_table_index_ablation(sizes, reps) {
        println!(
            "{:>6} {:>12.6} {:>12.6} {:>8.2} {:>12} {:>12} {:>8.2} {:>12} {:>12}",
            r.n,
            r.hash_secs,
            r.trie_secs,
            r.trie_secs / r.hash_secs,
            r.hash_cells,
            r.trie_cells,
            r.trie_cells as f64 / r.hash_cells as f64,
            r.hash_unfactored_cells,
            r.trie_unfactored_cells
        );
    }
}

fn ablation_seminaive(quick: bool) {
    header("Ablation — naive vs semi-naive bottom-up fixpoint (chain closure)");
    let sizes: &[i64] = if quick { &[32, 64] } else { &[32, 64, 128] };
    let reps = if quick { 2 } else { 3 };
    println!(
        "{:>6} {:>12} {:>14} {:>8} {:>14} {:>14}",
        "n", "naive (s)", "seminaive (s)", "speedup", "naive tuples", "semi tuples"
    );
    for r in run_seminaive_ablation(sizes, reps) {
        println!(
            "{:>6} {:>12.6} {:>14.6} {:>8.1} {:>14} {:>14}",
            r.n,
            r.naive_secs,
            r.seminaive_secs,
            r.naive_secs / r.seminaive_secs,
            r.naive_tuples,
            r.seminaive_tuples
        );
    }
}

fn wfs() {
    header("E12 — well-founded semantics on the non-stratified win/1 game");
    let mut w = Wfs::new(
        "win(X) :- move(X,Y), tnot win(Y).\n\
         move(1,2). move(2,1).\n\
         move(3,4). move(4,5).\n\
         move(6,7). move(7,6). move(7,8).",
    )
    .unwrap();
    for node in 1..=8 {
        let atom = format!("win({node})");
        let t = w.truth(&atom).unwrap();
        println!(
            "{atom:>8}: {}",
            match t {
                Truth::True => "true",
                Truth::False => "false",
                Truth::Undefined => "undefined (drawn position)",
            }
        );
    }
    let (t, u) = w.model_size();
    println!("model: {t} true atoms, {u} undefined atoms");
}
