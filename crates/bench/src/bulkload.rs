//! Bulk-load paths (paper §4.6).
//!
//! Three ways data reaches the engine, from slowest to fastest:
//!
//! 1. the **general reader** — full operator-precedence parsing of
//!    arbitrary HiLog terms ("usually takes several milliseconds even for
//!    simple terms" on a Sparc2);
//! 2. the **formatted read** — delimiter splitting against a fixed schema
//!    ("read and assert a fact in about a millisecond … including simple
//!    index maintenance");
//! 3. **object files** — precompiled canonical cells, "about 12x faster
//!    than loading through the formatted read and assert".
//!
//! This module provides generators for the test data files and the three
//! load drivers over an [`xsb_core::Engine`]; the E10 bench times them.

use xsb_core::{Engine, EngineError};
use xsb_syntax::{formatted_read, FieldKind};

/// Writes `n` facts `pred(i, i+1, atom_i)` in Prolog syntax (for the
/// general reader).
pub fn generate_prolog_text(pred: &str, n: usize) -> String {
    let mut out = String::with_capacity(n * 24);
    for i in 0..n {
        out.push_str(&format!("{pred}({i}, {}, name{}).\n", i + 1, i % 97));
    }
    out
}

/// Writes the same facts as a `|`-delimited data file (formatted read).
pub fn generate_delimited(n: usize) -> String {
    let mut out = String::with_capacity(n * 16);
    for i in 0..n {
        out.push_str(&format!("{i}|{}|name{}\n", i + 1, i % 97));
    }
    out
}

/// Load path 1: general reader (parse + consult as a dynamic predicate).
pub fn load_general(engine: &mut Engine, pred: &str, n: usize) -> Result<usize, EngineError> {
    engine.declare_dynamic(pred, 3)?;
    let text = generate_prolog_text(pred, n);
    engine.consult(&text)?;
    Ok(n)
}

/// Load path 2: formatted read — split each line against the schema, then
/// assert (with index maintenance).
pub fn load_formatted(engine: &mut Engine, pred: &str, data: &str) -> Result<usize, EngineError> {
    engine.declare_dynamic(pred, 3)?;
    let schema = [FieldKind::Int, FieldKind::Int, FieldKind::Atom];
    let psym = engine.syms.intern(pred);
    let mut n = 0usize;
    for line in data.lines() {
        if let Some(t) = formatted_read(line, psym, &schema, '|', &mut engine.syms)
            .map_err(EngineError::Other)?
        {
            engine.assert_term(&t)?;
            n += 1;
        }
    }
    Ok(n)
}

/// Load path 3: object file (produced by [`xsb_core::Engine::save_object`]).
pub fn load_object(engine: &mut Engine, data: &[u8]) -> Result<usize, EngineError> {
    engine.load_object(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_paths_load_identical_data() {
        let n = 500;

        let mut e1 = Engine::new();
        load_general(&mut e1, "emp", n).unwrap();
        assert_eq!(e1.count("emp(X, Y, Z)").unwrap(), n);

        let mut e2 = Engine::new();
        let data = generate_delimited(n);
        assert_eq!(load_formatted(&mut e2, "emp", &data).unwrap(), n);
        assert_eq!(e2.count("emp(X, Y, Z)").unwrap(), n);

        // build an object file from e2 and load into a third engine
        let obj = e2.save_object("emp", 3).unwrap();
        let mut e3 = Engine::new();
        assert_eq!(load_object(&mut e3, &obj).unwrap(), n);
        assert_eq!(e3.count("emp(X, Y, Z)").unwrap(), n);

        // same answers from an indexed point query
        assert_eq!(e1.count("emp(123, Y, Z)").unwrap(), 1);
        assert_eq!(e2.count("emp(123, Y, Z)").unwrap(), 1);
        assert_eq!(e3.count("emp(123, Y, Z)").unwrap(), 1);
    }
}
