//! Deterministic in-tree PRNG — no external `rand` dependency.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014 mixing constants) seeds a
//! xorshift64* stream. Benchmarks need reproducible pseudo-random workloads,
//! not cryptographic quality, so a 10-line generator with a fixed seed keeps
//! every run comparable across machines and requires zero network access.

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xorshift64* generator seeded via SplitMix64 (so any seed, including 0,
/// produces a well-mixed non-zero internal state).
#[derive(Clone, Debug)]
pub struct Prng {
    state: u64,
}

impl Prng {
    pub fn new(seed: u64) -> Prng {
        let mut s = seed;
        let mut state = splitmix64(&mut s);
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15;
        }
        Prng { state }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        // multiply-shift range reduction (Lemire); bias is < 2^-32 for the
        // small bounds used by workload generators.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `i64` in `[lo, hi]` (inclusive).
    #[inline]
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Prng::new(7);
        for _ in 0..10_000 {
            assert!(r.below(10) < 10);
            let v = r.int_in(-5, 5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut r = Prng::new(1);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.below(8) as usize] += 1;
        }
        // each bucket expects 1000; allow generous slack
        assert!(
            buckets.iter().all(|&c| (700..1300).contains(&c)),
            "{buckets:?}"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Prng::new(3);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(xs, sorted); // astronomically unlikely to be identity
    }
}
