//! Workload generators for the paper's evaluation section.

use xsb_core::Engine;
use xsb_datalog::ast::Value;
use xsb_datalog::Datalog;
use xsb_syntax::Term;

/// A list of directed edges `(from, to)` — the shape every graph
/// generator here produces.
pub type EdgeList = Vec<(i64, i64)>;

/// `edge(1,2). edge(2,3). … edge(N,1).` — the cycle of §5 / Figure 5 left.
pub fn cycle_edges(n: i64) -> Vec<(i64, i64)> {
    (1..=n)
        .map(|i| (i, if i == n { 1 } else { i + 1 }))
        .collect()
}

/// `edge(1,1). edge(1,2). … edge(1,N).` — the fanout of Figure 5 right.
pub fn fanout_edges(n: i64) -> Vec<(i64, i64)> {
    (1..=n).map(|i| (1, i)).collect()
}

/// `edge(1,2). … edge(N-1,N).` — an acyclic chain.
pub fn chain_edges(n: i64) -> Vec<(i64, i64)> {
    (1..n).map(|i| (i, i + 1)).collect()
}

/// Moves of a complete binary tree of height `h` (nodes 1..2^(h+1)-1).
pub fn binary_tree_moves(h: u32) -> Vec<(i64, i64)> {
    let internal = (1i64 << h) - 1;
    let mut out = Vec::with_capacity(2 * internal as usize);
    for n in 1..=internal {
        out.push((n, 2 * n));
        out.push((n, 2 * n + 1));
    }
    out
}

/// The G(n) formula from the paper's footnote 9: the number of subgoals
/// SLDNF evaluates for `win(1)` over a complete binary tree of height `n`:
/// `G(n) = 2^(⌊n/2⌋+2) - 3 + 2(n/2 - ⌊n/2⌋)`.
pub fn g_formula(n: u32) -> f64 {
    let half = (n / 2) as f64;
    let frac = n as f64 / 2.0 - half;
    2f64.powf(half + 2.0) - 3.0 + 2.0 * frac
}

/// The paper's left-recursive path program (tabled), §5.
pub const PATH_LEFT_TABLED: &str = "
    :- table path/2.
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- path(X,Z), edge(Z,Y).
";

/// Right-recursive SLD path (plain Prolog), §5's comparison point.
pub const PATH_RIGHT_SLD: &str = "
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- edge(X,Z), path(Z,Y).
";

/// Bottom-up source for the same program (rules only; facts added
/// programmatically).
pub const PATH_DATALOG: &str = "
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- path(X,Z), edge(Z,Y).
";

/// Builds an engine with `rules` consulted and `edge/2` facts asserted
/// through the fast programmatic path.
pub fn engine_with_edges(rules: &str, edges: &[(i64, i64)]) -> Engine {
    let mut e = Engine::new();
    e.declare_dynamic("edge", 2).expect("declare edge");
    e.consult(rules).expect("rules consult");
    let edge = e.syms.intern("edge");
    for &(a, b) in edges {
        e.assert_term(&Term::Compound(edge, vec![Term::Int(a), Term::Int(b)]))
            .expect("assert edge");
    }
    e
}

/// Builds a bottom-up engine with the same rules and facts.
pub fn datalog_with_edges(rules: &str, edges: &[(i64, i64)]) -> Datalog {
    let mut d = Datalog::new(rules).expect("rules lower");
    for &(a, b) in edges {
        d.add_fact("edge", &[Value::Int(a), Value::Int(b)]);
    }
    d
}

/// Builds the win/1 game for a given negation operator (`tnot`, `e_tnot`)
/// or SLDNF (`\\+`, untabled).
pub fn win_engine(neg: &str, moves: &[(i64, i64)]) -> Engine {
    let tabled = neg != "\\+";
    let rules = if tabled {
        format!(":- table win/1.\nwin(X) :- move(X, Y), {neg} win(Y).\n")
    } else {
        format!("win(X) :- move(X, Y), {neg} win(Y).\n")
    };
    let mut e = Engine::new();
    e.declare_dynamic("move", 2).expect("declare move");
    e.consult(&rules).expect("win rules");
    let mv = e.syms.intern("move");
    for &(a, b) in moves {
        e.assert_term(&Term::Compound(mv, vec![Term::Int(a), Term::Int(b)]))
            .expect("assert move");
    }
    e
}

/// Two join relations: `r(i, i % m)` and `s(j, j*2)` for an indexed
/// equijoin `r(X,Y), s(Y,Z)` with |r| = |s| = n.
pub fn join_relations(n: i64, m: i64) -> (EdgeList, EdgeList) {
    let r = (0..n).map(|i| (i, i % m)).collect();
    let s = (0..n).map(|j| (j, j * 2)).collect();
    (r, s)
}

/// `n` random edges over nodes `1..=domain`, deterministic in `seed` —
/// a sparse-graph workload between the cycle/fanout extremes.
pub fn random_edges(n: usize, domain: i64, seed: u64) -> Vec<(i64, i64)> {
    let mut rng = crate::prng::Prng::new(seed);
    let mut out = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::with_capacity(n);
    while out.len() < n {
        let e = (rng.int_in(1, domain), rng.int_in(1, domain));
        if seen.insert(e) {
            out.push(e);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_have_expected_sizes() {
        assert_eq!(cycle_edges(8).len(), 8);
        assert_eq!(cycle_edges(8)[7], (8, 1));
        assert_eq!(
            fanout_edges(5),
            vec![(1, 1), (1, 2), (1, 3), (1, 4), (1, 5)]
        );
        assert_eq!(chain_edges(4), vec![(1, 2), (2, 3), (3, 4)]);
        assert_eq!(binary_tree_moves(2).len(), 6);
    }

    #[test]
    fn g_formula_matches_paper_example() {
        // paper: height 4 → 13 of 31 subgoals
        assert_eq!(g_formula(4), 13.0);
    }

    #[test]
    fn engine_and_datalog_agree_on_cycle() {
        let edges = cycle_edges(16);
        let mut e = engine_with_edges(PATH_LEFT_TABLED, &edges);
        let n_top = e.count("path(1, X)").unwrap();
        let mut d = datalog_with_edges(PATH_DATALOG, &edges);
        let rows = d.query("path(1, Y)", xsb_datalog::Strategy::Magic).unwrap();
        assert_eq!(n_top, 16);
        assert_eq!(rows.len(), 16);
    }

    #[test]
    fn random_edges_are_deterministic_and_in_domain() {
        let a = random_edges(200, 32, 9);
        let b = random_edges(200, 32, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        assert!(a
            .iter()
            .all(|&(x, y)| (1..=32).contains(&x) && (1..=32).contains(&y)));
        // tabled reachability over a random graph terminates and agrees
        // with the bottom-up evaluator
        let edges = random_edges(60, 16, 9);
        let mut e = engine_with_edges(PATH_LEFT_TABLED, &edges);
        let top = e.count("path(1, X)").unwrap();
        let mut d = datalog_with_edges(PATH_DATALOG, &edges);
        let bottom = d
            .query("path(1, Y)", xsb_datalog::Strategy::Magic)
            .unwrap()
            .len();
        assert_eq!(top, bottom);
    }

    #[test]
    fn win_engines_agree_across_strategies() {
        let moves = binary_tree_moves(5); // odd height: root wins
        for neg in ["tnot", "e_tnot", "\\+"] {
            let mut e = win_engine(neg, &moves);
            assert!(e.holds("win(1)").unwrap(), "strategy {neg}");
            assert!(!e.holds("win(2)").unwrap(), "strategy {neg}");
        }
    }
}
