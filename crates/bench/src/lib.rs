//! # xsb-bench — benchmark harness for the paper's evaluation
//!
//! Workload generators ([`workloads`]) and experiment runners
//! ([`runners`]), shared by the `harness` binary (which prints the paper's
//! tables/figures) and the criterion benches. See DESIGN.md §3 for the
//! experiment ↔ paper mapping.

pub mod runners;
pub mod workloads;
