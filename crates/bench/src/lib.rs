//! # xsb-bench — benchmark harness for the paper's evaluation
//!
//! Workload generators ([`workloads`]), experiment runners ([`runners`]),
//! and a deterministic in-tree PRNG ([`prng`]), shared by the `harness`
//! binary (which prints the paper's tables/figures and exports JSON) and
//! the dependency-free micro-benches. See DESIGN.md §3 for the
//! experiment ↔ paper mapping.

pub mod bulkload;
pub mod prng;
pub mod runners;
pub mod workloads;
