//! Micro-benches — one group per paper table/figure (small sizes; the
//! `harness` binary runs the full parameter sweeps and JSON export).
//!
//! Dependency-free: a tiny best-of-N timing loop instead of criterion, so
//! `cargo bench` works in the offline sandbox. Each case runs a warmup
//! pass, then reports the best and median wall time over N timed passes.

use std::time::Instant;
use xsb_bench::runners::native_join;
use xsb_bench::workloads::*;
use xsb_datalog::Strategy;

const PASSES: usize = 7;

fn bench(group: &str, name: &str, mut f: impl FnMut()) {
    f(); // warmup
    let mut times: Vec<f64> = (0..PASSES)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    println!(
        "{group:<24} {name:<24} best {:>9.3} ms   median {:>9.3} ms",
        times[0],
        times[PASSES / 2]
    );
}

/// E1 / Table 2 — win/1 negation strategies (height 7).
fn table2_win() {
    let moves = binary_tree_moves(7);
    for neg in ["tnot", "e_tnot", "\\+"] {
        let label = if neg == "\\+" { "sldnf" } else { neg };
        let mut e = win_engine(neg, &moves);
        bench("table2_win_h7", label, || {
            e.abolish_all_tables();
            assert!(e.holds("win(1)").unwrap());
        });
    }
}

/// E3/E4 / Figure 5 — path over a cycle and a fanout of 256.
fn fig5() {
    for (group, edges) in [
        ("fig5_cycle_256", cycle_edges(256)),
        ("fig5_fanout_256", fanout_edges(256)),
    ] {
        let mut e = engine_with_edges(PATH_LEFT_TABLED, &edges);
        bench(group, "xsb_slg", || {
            e.abolish_all_tables();
            assert_eq!(e.count("path(1, X)").unwrap(), 256);
        });
        let mut d = datalog_with_edges(PATH_DATALOG, &edges);
        bench(group, "coral_def_magic", || {
            assert_eq!(d.query("path(1, Y)", Strategy::Magic).unwrap().len(), 256);
        });
        let mut d2 = datalog_with_edges(PATH_DATALOG, &edges);
        bench(group, "coral_fac_factored", || {
            assert_eq!(
                d2.query("path(1, Y)", Strategy::MagicFactored)
                    .unwrap()
                    .len(),
                256
            );
        });
    }
}

/// E5 / Table 3 — the five join implementations at |R|=|S|=2000.
fn table3_join() {
    use std::sync::Arc;
    use xsb_storage::{client_server_join, BufferPool, Disk, Field, Table};
    let (r, s) = join_relations(2000, 1000);
    let expected = native_join(&r, &s);
    let group = "table3_join_2000";

    bench(group, "native_quintus_role", || {
        assert_eq!(native_join(&r, &s), expected)
    });

    let mut e = xsb_core::Engine::new();
    e.declare_dynamic("r", 2).unwrap();
    e.declare_dynamic("s", 2).unwrap();
    let rs = e.syms.intern("r");
    let ss = e.syms.intern("s");
    for &(x, y) in &r {
        e.assert_term(&xsb_syntax::Term::Compound(
            rs,
            vec![xsb_syntax::Term::Int(x), xsb_syntax::Term::Int(y)],
        ))
        .unwrap();
    }
    for &(x, y) in &s {
        e.assert_term(&xsb_syntax::Term::Compound(
            ss,
            vec![xsb_syntax::Term::Int(x), xsb_syntax::Term::Int(y)],
        ))
        .unwrap();
    }
    bench(group, "xsb_slgwam", || {
        assert_eq!(e.count("r(X, Y), s(Y, Z)").unwrap(), expected)
    });

    let load_datalog = || {
        let mut d = xsb_datalog::Datalog::new("j(X,Z) :- r(X,Y), s(Y,Z).").unwrap();
        for &(x, y) in &r {
            d.add_fact(
                "r",
                &[
                    xsb_datalog::ast::Value::Int(x),
                    xsb_datalog::ast::Value::Int(y),
                ],
            );
        }
        for &(x, y) in &s {
            d.add_fact(
                "s",
                &[
                    xsb_datalog::ast::Value::Int(x),
                    xsb_datalog::ast::Value::Int(y),
                ],
            );
        }
        d
    };
    let mut d = load_datalog();
    bench(group, "ldl_role_seminaive", || {
        assert_eq!(
            d.query("j(X, Z)", Strategy::SemiNaive).unwrap().len(),
            expected
        )
    });
    let mut d = load_datalog();
    bench(group, "coral_role_magic", || {
        assert_eq!(d.query("j(X, Z)", Strategy::Magic).unwrap().len(), expected)
    });

    let pool = Arc::new(BufferPool::new(Arc::new(Disk::default()), 4096));
    let rt = Table::load(
        pool.clone(),
        r.iter().map(|&(a, y)| vec![Field::Int(a), Field::Int(y)]),
        1,
        1024,
    );
    let st = Table::load(
        pool.clone(),
        s.iter().map(|&(a, y)| vec![Field::Int(a), Field::Int(y)]),
        0,
        1024,
    );
    bench(group, "sybase_role_pagestore", || {
        assert_eq!(client_server_join(&rt, 1, &st, 0), expected)
    });
}

/// E6 — tabled left recursion vs SLD right recursion on a chain of 1024.
fn slg_vs_sld() {
    let edges = chain_edges(1024);
    let group = "slg_vs_sld_chain_1024";
    let mut e = engine_with_edges(PATH_RIGHT_SLD, &edges);
    bench(group, "sld_right_recursive", || {
        assert_eq!(e.count("path(1, X)").unwrap(), 1023)
    });
    let mut e = engine_with_edges(PATH_LEFT_TABLED, &edges);
    bench(group, "slg_left_recursive", || {
        e.abolish_all_tables();
        assert_eq!(e.count("path(1, X)").unwrap(), 1023);
    });
}

/// E7 — append/3: SLD linear vs tabled quadratic.
fn append_bench() {
    let app = ":- table app/3.\napp([], L, L).\napp([H|T], L, [H|R]) :- app(T, L, R).";
    for n in [64i64, 256] {
        let listsrc = format!(
            "mylist([{}]).",
            (1..=n).map(|i| i.to_string()).collect::<Vec<_>>().join(",")
        );
        let mut e = xsb_core::Engine::new();
        e.consult(app).unwrap();
        e.consult(&listsrc).unwrap();
        bench("append", &format!("sld/{n}"), || {
            assert!(e.holds("mylist(L), append(L, [0], R)").unwrap())
        });
        let mut e2 = xsb_core::Engine::new();
        e2.consult(app).unwrap();
        e2.consult(&listsrc).unwrap();
        bench("append", &format!("slg_tabled/{n}"), || {
            e2.abolish_all_tables();
            assert!(e2.holds("mylist(L), app(L, [0], R)").unwrap());
        });
    }
}

/// E8 — HiLog overhead (chain of 512).
fn hilog_overhead() {
    let edges = chain_edges(512);
    let group = "hilog_chain_512";
    let mut e = engine_with_edges(PATH_RIGHT_SLD, &edges);
    bench(group, "first_order", || {
        assert_eq!(e.count("path(1, X)").unwrap(), 511)
    });
    for (label, specialize) in [("hilog_specialized", true), ("hilog_generic", false)] {
        let mut e = xsb_core::Engine::new();
        e.hilog_specialization = specialize;
        let mut src = String::from(
            ":- first_string_index(apply/3).\n:- hilog g.\n\
             hpath(G)(X, Y) :- G(X, Y).\n\
             hpath(G)(X, Y) :- G(X, Z), hpath(G)(Z, Y).\n",
        );
        for &(x, y) in &edges {
            src.push_str(&format!("g({x},{y}).\n"));
        }
        e.consult(&src).unwrap();
        bench(group, label, || {
            assert_eq!(e.count("hpath(g)(1, X)").unwrap(), 511)
        });
    }
}

/// E9 — dynamic vs static fact access (indexed point lookups).
fn dynamic_vs_static() {
    let n = 5000i64;
    let group = "dynamic_vs_static_5000";
    let q = format!("between(0, {}, I), ds(I, V), fail", 1999);
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("ds({i}, {}).\n", i * 2));
    }
    let mut e = xsb_core::Engine::new();
    e.consult(&src).unwrap();
    bench(group, "static_compiled", || {
        assert_eq!(e.count(&q).unwrap(), 0)
    });
    let mut e = xsb_core::Engine::new();
    e.declare_dynamic("ds", 2).unwrap();
    let ds = e.syms.intern("ds");
    for i in 0..n {
        e.assert_term(&xsb_syntax::Term::Compound(
            ds,
            vec![xsb_syntax::Term::Int(i), xsb_syntax::Term::Int(i * 2)],
        ))
        .unwrap();
    }
    bench(group, "dynamic_asserted", || {
        assert_eq!(e.count(&q).unwrap(), 0)
    });
}

/// E10 — the three bulk-load paths (n = 5000).
fn bulk_load() {
    use xsb_bench::bulkload::*;
    let n = 5000usize;
    let group = "bulk_load_5000";
    bench(group, "general_reader", || {
        let mut e = xsb_core::Engine::new();
        assert_eq!(load_general(&mut e, "emp", n).unwrap(), n);
    });
    let data = generate_delimited(n);
    bench(group, "formatted_read", || {
        let mut e = xsb_core::Engine::new();
        assert_eq!(load_formatted(&mut e, "emp", &data).unwrap(), n);
    });
    let mut builder = xsb_core::Engine::new();
    load_formatted(&mut builder, "emp", &data).unwrap();
    let obj = builder.save_object("emp", 3).unwrap();
    bench(group, "object_file", || {
        let mut e = xsb_core::Engine::new();
        assert_eq!(load_object(&mut e, &obj).unwrap(), n);
    });
}

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default();
    let groups: [(&str, fn()); 8] = [
        ("table2", table2_win),
        ("fig5", fig5),
        ("table3", table3_join),
        ("slg_vs_sld", slg_vs_sld),
        ("append", append_bench),
        ("hilog", hilog_overhead),
        ("dynamic_vs_static", dynamic_vs_static),
        ("bulk_load", bulk_load),
    ];
    for (name, f) in groups {
        if filter.is_empty() || name.contains(&filter) {
            f();
        }
    }
}
