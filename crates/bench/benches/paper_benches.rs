//! Criterion benches — one group per paper table/figure (small sizes; the
//! `harness` binary runs the full parameter sweeps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xsb_bench::runners::native_join;
use xsb_bench::workloads::*;
use xsb_datalog::Strategy;

/// E1 / Table 2 — win/1 negation strategies (height 7).
fn table2_win(c: &mut Criterion) {
    let moves = binary_tree_moves(7);
    let mut g = c.benchmark_group("table2_win_h7");
    for neg in ["tnot", "e_tnot", "\\+"] {
        let label = if neg == "\\+" { "sldnf" } else { neg };
        g.bench_function(label, |b| {
            let mut e = win_engine(neg, &moves);
            b.iter(|| {
                e.abolish_all_tables();
                assert!(e.holds("win(1)").unwrap());
            });
        });
    }
    g.finish();
}

/// E3 / Figure 5 left — path over a cycle of 256.
fn fig5_cycle(c: &mut Criterion) {
    let edges = cycle_edges(256);
    let mut g = c.benchmark_group("fig5_cycle_256");
    g.bench_function("xsb_slg", |b| {
        let mut e = engine_with_edges(PATH_LEFT_TABLED, &edges);
        b.iter(|| {
            e.abolish_all_tables();
            assert_eq!(e.count("path(1, X)").unwrap(), 256);
        });
    });
    g.bench_function("coral_def_magic", |b| {
        let mut d = datalog_with_edges(PATH_DATALOG, &edges);
        b.iter(|| {
            assert_eq!(d.query("path(1, Y)", Strategy::Magic).unwrap().len(), 256);
        });
    });
    g.bench_function("coral_fac_factored", |b| {
        let mut d = datalog_with_edges(PATH_DATALOG, &edges);
        b.iter(|| {
            assert_eq!(
                d.query("path(1, Y)", Strategy::MagicFactored).unwrap().len(),
                256
            );
        });
    });
    g.finish();
}

/// E4 / Figure 5 right — path over a fanout of 256.
fn fig5_fanout(c: &mut Criterion) {
    let edges = fanout_edges(256);
    let mut g = c.benchmark_group("fig5_fanout_256");
    g.bench_function("xsb_slg", |b| {
        let mut e = engine_with_edges(PATH_LEFT_TABLED, &edges);
        b.iter(|| {
            e.abolish_all_tables();
            assert_eq!(e.count("path(1, X)").unwrap(), 256);
        });
    });
    g.bench_function("coral_def_magic", |b| {
        let mut d = datalog_with_edges(PATH_DATALOG, &edges);
        b.iter(|| {
            assert_eq!(d.query("path(1, Y)", Strategy::Magic).unwrap().len(), 256);
        });
    });
    g.finish();
}

/// E5 / Table 3 — the five join implementations at |R|=|S|=2000.
fn table3_join(c: &mut Criterion) {
    use std::sync::Arc;
    use xsb_storage::{client_server_join, BufferPool, Disk, Field, Table};
    let (r, s) = join_relations(2000, 1000);
    let expected = native_join(&r, &s);
    let mut g = c.benchmark_group("table3_join_2000");
    g.bench_function("native_quintus_role", |b| {
        b.iter(|| assert_eq!(native_join(&r, &s), expected))
    });
    g.bench_function("xsb_slgwam", |b| {
        let mut e = xsb_core::Engine::new();
        e.declare_dynamic("r", 2).unwrap();
        e.declare_dynamic("s", 2).unwrap();
        let rs = e.syms.intern("r");
        let ss = e.syms.intern("s");
        for &(x, y) in &r {
            e.assert_term(&xsb_syntax::Term::Compound(
                rs,
                vec![xsb_syntax::Term::Int(x), xsb_syntax::Term::Int(y)],
            ))
            .unwrap();
        }
        for &(x, y) in &s {
            e.assert_term(&xsb_syntax::Term::Compound(
                ss,
                vec![xsb_syntax::Term::Int(x), xsb_syntax::Term::Int(y)],
            ))
            .unwrap();
        }
        b.iter(|| assert_eq!(e.count("r(X, Y), s(Y, Z)").unwrap(), expected));
    });
    g.bench_function("ldl_role_seminaive", |b| {
        let mut d = xsb_datalog::Datalog::new("j(X,Z) :- r(X,Y), s(Y,Z).").unwrap();
        for &(x, y) in &r {
            d.add_fact(
                "r",
                &[xsb_datalog::ast::Value::Int(x), xsb_datalog::ast::Value::Int(y)],
            );
        }
        for &(x, y) in &s {
            d.add_fact(
                "s",
                &[xsb_datalog::ast::Value::Int(x), xsb_datalog::ast::Value::Int(y)],
            );
        }
        b.iter(|| {
            assert_eq!(d.query("j(X, Z)", Strategy::SemiNaive).unwrap().len(), expected)
        });
    });
    g.bench_function("coral_role_magic", |b| {
        let mut d = xsb_datalog::Datalog::new("j(X,Z) :- r(X,Y), s(Y,Z).").unwrap();
        for &(x, y) in &r {
            d.add_fact(
                "r",
                &[xsb_datalog::ast::Value::Int(x), xsb_datalog::ast::Value::Int(y)],
            );
        }
        for &(x, y) in &s {
            d.add_fact(
                "s",
                &[xsb_datalog::ast::Value::Int(x), xsb_datalog::ast::Value::Int(y)],
            );
        }
        b.iter(|| assert_eq!(d.query("j(X, Z)", Strategy::Magic).unwrap().len(), expected));
    });
    g.bench_function("sybase_role_pagestore", |b| {
        let pool = Arc::new(BufferPool::new(Arc::new(Disk::default()), 4096));
        let rt = Table::load(
            pool.clone(),
            r.iter().map(|&(a, y)| vec![Field::Int(a), Field::Int(y)]),
            1,
            1024,
        );
        let st = Table::load(
            pool.clone(),
            s.iter().map(|&(a, y)| vec![Field::Int(a), Field::Int(y)]),
            0,
            1024,
        );
        b.iter(|| assert_eq!(client_server_join(&rt, 1, &st, 0), expected));
    });
    g.finish();
}

/// E6 — tabled left recursion vs SLD right recursion on a chain of 1024.
fn slg_vs_sld(c: &mut Criterion) {
    let edges = chain_edges(1024);
    let mut g = c.benchmark_group("slg_vs_sld_chain_1024");
    g.bench_function("sld_right_recursive", |b| {
        let mut e = engine_with_edges(PATH_RIGHT_SLD, &edges);
        b.iter(|| assert_eq!(e.count("path(1, X)").unwrap(), 1023));
    });
    g.bench_function("slg_left_recursive", |b| {
        let mut e = engine_with_edges(PATH_LEFT_TABLED, &edges);
        b.iter(|| {
            e.abolish_all_tables();
            assert_eq!(e.count("path(1, X)").unwrap(), 1023);
        });
    });
    g.finish();
}

/// E7 — append/3: SLD linear vs tabled quadratic.
fn append_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("append");
    for n in [64i64, 256] {
        let mut e = xsb_core::Engine::new();
        e.consult(
            ":- table app/3.\napp([], L, L).\napp([H|T], L, [H|R]) :- app(T, L, R).",
        )
        .unwrap();
        let listsrc = format!(
            "mylist([{}]).",
            (1..=n).map(|i| i.to_string()).collect::<Vec<_>>().join(",")
        );
        e.consult(&listsrc).unwrap();
        g.bench_with_input(BenchmarkId::new("sld", n), &n, |b, _| {
            b.iter(|| assert!(e.holds("mylist(L), append(L, [0], R)").unwrap()));
        });
        let mut e2 = xsb_core::Engine::new();
        e2.consult(
            ":- table app/3.\napp([], L, L).\napp([H|T], L, [H|R]) :- app(T, L, R).",
        )
        .unwrap();
        e2.consult(&listsrc).unwrap();
        g.bench_with_input(BenchmarkId::new("slg_tabled", n), &n, |b, _| {
            b.iter(|| {
                e2.abolish_all_tables();
                assert!(e2.holds("mylist(L), app(L, [0], R)").unwrap());
            });
        });
    }
    g.finish();
}

/// E8 — HiLog overhead (chain of 512).
fn hilog_overhead(c: &mut Criterion) {
    let edges = chain_edges(512);
    let mut g = c.benchmark_group("hilog_chain_512");
    g.bench_function("first_order", |b| {
        let mut e = engine_with_edges(PATH_RIGHT_SLD, &edges);
        b.iter(|| assert_eq!(e.count("path(1, X)").unwrap(), 511));
    });
    for (label, specialize) in [("hilog_specialized", true), ("hilog_generic", false)] {
        g.bench_function(label, |b| {
            let mut e = xsb_core::Engine::new();
            e.hilog_specialization = specialize;
            let mut src = String::from(
                ":- first_string_index(apply/3).\n:- hilog g.\n\
                 hpath(G)(X, Y) :- G(X, Y).\n\
                 hpath(G)(X, Y) :- G(X, Z), hpath(G)(Z, Y).\n",
            );
            for &(x, y) in &edges {
                src.push_str(&format!("g({x},{y}).\n"));
            }
            e.consult(&src).unwrap();
            b.iter(|| assert_eq!(e.count("hpath(g)(1, X)").unwrap(), 511));
        });
    }
    g.finish();
}

/// E9 — dynamic vs static fact access (indexed point lookups).
fn dynamic_vs_static(c: &mut Criterion) {
    let n = 5000i64;
    let mut g = c.benchmark_group("dynamic_vs_static_5000");
    let q = format!("between(0, {}, I), ds(I, V), fail", 1999);
    g.bench_function("static_compiled", |b| {
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!("ds({i}, {}).\n", i * 2));
        }
        let mut e = xsb_core::Engine::new();
        e.consult(&src).unwrap();
        b.iter(|| assert_eq!(e.count(&q).unwrap(), 0));
    });
    g.bench_function("dynamic_asserted", |b| {
        let mut e = xsb_core::Engine::new();
        e.declare_dynamic("ds", 2).unwrap();
        let ds = e.syms.intern("ds");
        for i in 0..n {
            e.assert_term(&xsb_syntax::Term::Compound(
                ds,
                vec![xsb_syntax::Term::Int(i), xsb_syntax::Term::Int(i * 2)],
            ))
            .unwrap();
        }
        b.iter(|| assert_eq!(e.count(&q).unwrap(), 0));
    });
    g.finish();
}

/// E10 — the three bulk-load paths (n = 5000).
fn bulk_load(c: &mut Criterion) {
    use xsb_storage::bulkload::*;
    let n = 5000usize;
    let mut g = c.benchmark_group("bulk_load_5000");
    g.bench_function("general_reader", |b| {
        b.iter(|| {
            let mut e = xsb_core::Engine::new();
            assert_eq!(load_general(&mut e, "emp", n).unwrap(), n);
        });
    });
    let data = generate_delimited(n);
    g.bench_function("formatted_read", |b| {
        b.iter(|| {
            let mut e = xsb_core::Engine::new();
            assert_eq!(load_formatted(&mut e, "emp", &data).unwrap(), n);
        });
    });
    let mut builder = xsb_core::Engine::new();
    load_formatted(&mut builder, "emp", &data).unwrap();
    let obj = builder.save_object("emp", 3).unwrap();
    g.bench_function("object_file", |b| {
        b.iter(|| {
            let mut e = xsb_core::Engine::new();
            assert_eq!(load_object(&mut e, &obj).unwrap(), n);
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = table2_win, fig5_cycle, fig5_fanout, table3_join, slg_vs_sld,
              append_bench, hilog_overhead, dynamic_vs_static, bulk_load
}
criterion_main!(benches);
