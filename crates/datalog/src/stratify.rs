//! Predicate stratification.
//!
//! Builds the predicate dependency graph and assigns strata so that every
//! negative dependency crosses strictly downward. Programs with a negative
//! edge inside an SCC are rejected (not stratified) — the bottom-up
//! baseline supports stratified negation, as CORAL/LDL did (paper Table 1).

use crate::ast::{DatalogProgram, PredKey, Rule};
use std::collections::HashMap;

/// Stratification result: stratum per derived predicate, and rules grouped
/// by the stratum of their head.
#[derive(Debug)]
pub struct Strata {
    pub stratum_of: HashMap<PredKey, usize>,
    pub rules_by_stratum: Vec<Vec<Rule>>,
}

/// Error: the program is not stratified.
#[derive(Debug, Clone, PartialEq)]
pub struct NotStratified(pub String);

impl std::fmt::Display for NotStratified {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "program is not stratified: {}", self.0)
    }
}

impl std::error::Error for NotStratified {}

/// Computes strata by iterating the standard constraint system:
/// `stratum(p) ≥ stratum(q)` for positive deps, `stratum(p) > stratum(q)`
/// for negative deps. Diverges beyond `n` strata ⇒ a negative cycle.
pub fn stratify(program: &DatalogProgram) -> Result<Strata, NotStratified> {
    let mut stratum: HashMap<PredKey, usize> = HashMap::new();
    let preds: Vec<PredKey> = {
        let mut v: Vec<PredKey> = Vec::new();
        for r in &program.rules {
            if !v.contains(&r.head.pred) {
                v.push(r.head.pred);
            }
            for l in &r.body {
                if !v.contains(&l.pred) {
                    v.push(l.pred);
                }
            }
        }
        for (p, _) in &program.facts {
            if !v.contains(p) {
                v.push(*p);
            }
        }
        v
    };
    for p in &preds {
        stratum.insert(*p, 0);
    }
    let n = preds.len().max(1);
    let mut changed = true;
    let mut rounds = 0usize;
    while changed {
        changed = false;
        rounds += 1;
        if rounds > n + 1 {
            return Err(NotStratified("negative dependency cycle detected".into()));
        }
        for r in &program.rules {
            let h = stratum[&r.head.pred];
            let mut need = h;
            for l in &r.body {
                let s = stratum[&l.pred];
                need = need.max(if l.negated { s + 1 } else { s });
            }
            if need > h {
                stratum.insert(r.head.pred, need);
                changed = true;
            }
        }
    }

    let max = stratum.values().copied().max().unwrap_or(0);
    let mut rules_by_stratum: Vec<Vec<Rule>> = vec![Vec::new(); max + 1];
    for r in &program.rules {
        rules_by_stratum[stratum[&r.head.pred]].push(r.clone());
    }
    Ok(Strata {
        stratum_of: stratum,
        rules_by_stratum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::DatalogProgram;
    use xsb_syntax::{parse_program, Clause, Item, OpTable, SymbolTable};

    fn prog(src: &str) -> DatalogProgram {
        let mut syms = SymbolTable::new();
        let ops = OpTable::standard();
        let items = parse_program(src, &mut syms, &ops).unwrap();
        let clauses: Vec<Clause> = items
            .into_iter()
            .filter_map(|i| match i {
                Item::Clause(c) => Some(c),
                _ => None,
            })
            .collect();
        DatalogProgram::from_clauses(&clauses).unwrap()
    }

    #[test]
    fn positive_program_is_one_stratum() {
        let p = prog("path(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\nedge(1,2).");
        let s = stratify(&p).unwrap();
        assert_eq!(s.rules_by_stratum.len(), 1);
    }

    #[test]
    fn negation_creates_second_stratum() {
        let p = prog(
            "reach(1).\nreach(Y) :- reach(X), edge(X,Y).\n\
             unreach(X) :- node(X), tnot reach(X).\nedge(1,2). node(1).",
        );
        let s = stratify(&p).unwrap();
        assert_eq!(s.rules_by_stratum.len(), 2);
        assert_eq!(s.rules_by_stratum[1].len(), 1);
    }

    #[test]
    fn win_program_is_not_stratified() {
        let p = prog("win(X) :- move(X,Y), tnot win(Y).\nmove(1,2).");
        assert!(stratify(&p).is_err());
    }
}
