//! The factoring optimization (Naughton, Ramakrishnan, Sagiv & Ullman,
//! "Argument reduction through factoring", VLDB'89) — the `CORAL-fac` line
//! in the paper's Figure 5.
//!
//! For left- or right-linear transitive-closure-shaped programs queried
//! with the first argument bound, the bound argument can be *factored out*
//! entirely: instead of magic-set tuples `path_bf(c, Y)` carrying `c`
//! everywhere, a unary relation of reachable nodes is computed.

use crate::ast::{Arg, ConstId, DatalogProgram, Literal, PredKey, Rule};
use xsb_syntax::SymbolTable;

/// A successfully factored program.
pub struct FactoredProgram {
    pub program: DatalogProgram,
    /// the unary answer predicate: `f(Y)` ⇔ `p(c, Y)`
    pub answer_pred: PredKey,
}

/// Attempts to factor `program` for the query `p(c, Y)`. Returns `None`
/// when the program does not match the (left- or right-) linear pattern —
/// callers fall back to plain magic sets, as CORAL did.
pub fn try_factor(
    program: &DatalogProgram,
    query_pred: PredKey,
    bound_const: ConstId,
    syms: &mut SymbolTable,
) -> Option<FactoredProgram> {
    let rules: Vec<&Rule> = program
        .rules
        .iter()
        .filter(|r| r.head.pred == query_pred)
        .collect();
    // no other derived predicate may feed the pattern
    if rules.len() != 2 || program.rules.len() != 2 {
        return None;
    }
    // identify base and recursive rule
    let (base, rec) = {
        let r0_rec = rules[0].body.iter().any(|l| l.pred == query_pred);
        let r1_rec = rules[1].body.iter().any(|l| l.pred == query_pred);
        match (r0_rec, r1_rec) {
            (false, true) => (rules[0], rules[1]),
            (true, false) => (rules[1], rules[0]),
            _ => return None,
        }
    };
    // base: p(X,Y) :- e(X,Y).
    let e = match base.body.as_slice() {
        [l] if !l.negated
            && l.pred != query_pred
            && base.head.args.len() == 2
            && l.args == base.head.args =>
        {
            l.pred
        }
        _ => return None,
    };
    let (hx, hy) = match (&base.head.args[0], &base.head.args[1]) {
        (Arg::Var(x), Arg::Var(y)) if x != y => (*x, *y),
        _ => return None,
    };

    // recursive: left-linear  p(X,Y) :- p(X,Z), e(Z,Y)
    //         or right-linear p(X,Y) :- e(X,Z), p(Z,Y)
    if rec.body.len() != 2 || rec.head.args.len() != 2 {
        return None;
    }
    let (rx, ry) = match (&rec.head.args[0], &rec.head.args[1]) {
        (Arg::Var(x), Arg::Var(y)) if x != y => (*x, *y),
        _ => return None,
    };
    let matches_left = {
        // p(X,Z), e(Z,Y)
        let l0 = &rec.body[0];
        let l1 = &rec.body[1];
        l0.pred == query_pred
            && l1.pred == e
            && !l0.negated
            && !l1.negated
            && l0.args[0] == Arg::Var(rx)
            && l0.args[1] == l1.args[0]
            && l1.args[1] == Arg::Var(ry)
    };
    let matches_right = {
        // e(X,Z), p(Z,Y)
        let l0 = &rec.body[0];
        let l1 = &rec.body[1];
        l0.pred == e
            && l1.pred == query_pred
            && !l0.negated
            && !l1.negated
            && l0.args[0] == Arg::Var(rx)
            && l0.args[1] == l1.args[0]
            && l1.args[1] == Arg::Var(ry)
    };
    if !matches_left && !matches_right {
        return None;
    }
    let _ = (hx, hy);

    // factored program:
    //   f(Y) :- e(c, Y).
    //   f(Y) :- f(Z), e(Z, Y).
    // (for both linearities the answer set is the set of nodes reachable
    //  from c, computed without carrying c in any tuple)
    let f = syms.intern(&format!("f_{}", syms.name(query_pred.0)));
    let fkey = (f, 1);
    let mut out = DatalogProgram {
        consts: crate::magic::clone_consts(program),
        facts: program.facts.clone(),
        ..DatalogProgram::default()
    };
    out.rules.push(Rule {
        head: Literal {
            pred: fkey,
            args: vec![Arg::Var(0)],
            negated: false,
        },
        body: vec![Literal {
            pred: e,
            args: vec![Arg::Const(bound_const), Arg::Var(0)],
            negated: false,
        }],
    });
    out.rules.push(Rule {
        head: Literal {
            pred: fkey,
            args: vec![Arg::Var(1)],
            negated: false,
        },
        body: vec![
            Literal {
                pred: fkey,
                args: vec![Arg::Var(0)],
                negated: false,
            },
            Literal {
                pred: e,
                args: vec![Arg::Var(0), Arg::Var(1)],
                negated: false,
            },
        ],
    });
    Some(FactoredProgram {
        program: out,
        answer_pred: fkey,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{DatalogProgram, Value};
    use crate::seminaive::Evaluator;
    use crate::stratify::stratify;
    use xsb_syntax::{parse_program, Clause, Item, OpTable};

    fn setup(src: &str) -> (DatalogProgram, SymbolTable) {
        let mut syms = SymbolTable::new();
        let ops = OpTable::standard();
        let items = parse_program(src, &mut syms, &ops).unwrap();
        let clauses: Vec<Clause> = items
            .into_iter()
            .filter_map(|i| match i {
                Item::Clause(c) => Some(c),
                _ => None,
            })
            .collect();
        (DatalogProgram::from_clauses(&clauses).unwrap(), syms)
    }

    #[test]
    fn factors_left_linear_path() {
        let (mut p, mut syms) = setup(
            "path(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\n\
             edge(1,2). edge(2,3). edge(3,1).",
        );
        let path = syms.lookup("path").unwrap();
        let one = p.consts.intern(Value::Int(1));
        let f = try_factor(&p, (path, 2), one, &mut syms).expect("factorable");
        let strata = stratify(&f.program).unwrap();
        let mut ev = Evaluator::from_facts(&f.program);
        ev.evaluate(&strata, true);
        assert_eq!(ev.answers(f.answer_pred, &[None]).len(), 3);
    }

    #[test]
    fn factors_right_linear_path() {
        let (mut p, mut syms) = setup(
            "path(X,Y) :- edge(X,Y).\npath(X,Y) :- edge(X,Z), path(Z,Y).\n\
             edge(1,2). edge(2,3).",
        );
        let path = syms.lookup("path").unwrap();
        let one = p.consts.intern(Value::Int(1));
        let f = try_factor(&p, (path, 2), one, &mut syms).expect("factorable");
        let strata = stratify(&f.program).unwrap();
        let mut ev = Evaluator::from_facts(&f.program);
        ev.evaluate(&strata, true);
        assert_eq!(ev.answers(f.answer_pred, &[None]).len(), 2);
    }

    #[test]
    fn rejects_nonlinear_rules() {
        let (mut p, mut syms) =
            setup("path(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), path(Z,Y).\nedge(1,2).");
        let path = syms.lookup("path").unwrap();
        let one = p.consts.intern(Value::Int(1));
        assert!(try_factor(&p, (path, 2), one, &mut syms).is_none());
    }

    #[test]
    fn rejects_extra_rules() {
        let (mut p, mut syms) = setup(
            "path(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\n\
             other(X) :- edge(X, X).\nedge(1,2).",
        );
        let path = syms.lookup("path").unwrap();
        let one = p.consts.intern(Value::Int(1));
        assert!(try_factor(&p, (path, 2), one, &mut syms).is_none());
    }
}
