//! Relations for the set-at-a-time evaluator.
//!
//! A relation is a deduplicated set of tuples with hash indexes built on
//! demand for whatever bound-position pattern a join needs — the generic,
//! interpretive machinery of a bottom-up deductive database engine.

use crate::ast::ConstId;
use std::collections::{HashMap, HashSet};

/// A set of tuples with lazily built join indexes.
#[derive(Default, Debug)]
pub struct Relation {
    pub arity: u16,
    pub tuples: Vec<Vec<ConstId>>,
    set: HashSet<Vec<ConstId>>,
    /// indexes keyed by the sorted positions they cover; each maps the key
    /// values at those positions to row numbers. Rebuilt when stale.
    indexes: HashMap<Vec<u16>, BuiltIndex>,
}

#[derive(Debug)]
struct BuiltIndex {
    /// number of tuples when the index was built
    upto: usize,
    map: HashMap<Vec<ConstId>, Vec<u32>>,
}

impl Relation {
    pub fn new(arity: u16) -> Relation {
        Relation {
            arity,
            ..Default::default()
        }
    }

    /// Inserts a tuple; returns true when new.
    pub fn insert(&mut self, t: Vec<ConstId>) -> bool {
        debug_assert_eq!(t.len(), self.arity as usize);
        if self.set.insert(t.clone()) {
            self.tuples.push(t);
            true
        } else {
            false
        }
    }

    pub fn contains(&self, t: &[ConstId]) -> bool {
        self.set.contains(t)
    }

    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Row numbers whose values at `positions` equal `key`. Builds or
    /// refreshes the index for `positions` if needed.
    pub fn select(&mut self, positions: &[u16], key: &[ConstId]) -> &[u32] {
        debug_assert_eq!(positions.len(), key.len());
        let needs_build = match self.indexes.get(positions) {
            Some(ix) => ix.upto != self.tuples.len(),
            None => true,
        };
        if needs_build {
            let mut map: HashMap<Vec<ConstId>, Vec<u32>> = HashMap::new();
            for (row, t) in self.tuples.iter().enumerate() {
                let k: Vec<ConstId> = positions.iter().map(|&p| t[p as usize]).collect();
                map.entry(k).or_default().push(row as u32);
            }
            self.indexes.insert(
                positions.to_vec(),
                BuiltIndex {
                    upto: self.tuples.len(),
                    map,
                },
            );
        }
        self.indexes
            .get(positions)
            .and_then(|ix| ix.map.get(key))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    pub fn tuple(&self, row: u32) -> &[ConstId] {
        &self.tuples[row as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new(2);
        assert!(r.insert(vec![1, 2]));
        assert!(!r.insert(vec![1, 2]));
        assert!(r.insert(vec![2, 1]));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn select_by_position() {
        let mut r = Relation::new(2);
        r.insert(vec![1, 10]);
        r.insert(vec![1, 11]);
        r.insert(vec![2, 10]);
        let rows = r.select(&[0], &[1]).to_vec();
        assert_eq!(rows.len(), 2);
        let rows = r.select(&[1], &[10]).to_vec();
        assert_eq!(rows.len(), 2);
        let rows = r.select(&[0, 1], &[2, 10]).to_vec();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn index_refreshes_after_insert() {
        let mut r = Relation::new(1);
        r.insert(vec![1]);
        assert_eq!(r.select(&[0], &[1]).len(), 1);
        r.insert(vec![1]); // dup, no change
        r.insert(vec![2]);
        assert_eq!(r.select(&[0], &[2]).len(), 1);
        assert_eq!(r.select(&[0], &[1]).len(), 1);
    }
}
