//! # xsb-datalog — the bottom-up baseline (CORAL/LDL stand-in)
//!
//! The paper's §5 compares XSB's compiled, tuple-at-a-time SLG engine
//! against interpretive, set-at-a-time bottom-up systems. This crate is
//! that comparator, built the way those systems were: magic-sets rewriting
//! for goal direction ("CORAL-def" in Figure 5), optional factoring
//! ("CORAL-fac"), and naive/semi-naive fixpoint evaluation with stratified
//! negation.
//!
//! ```
//! use xsb_datalog::{Datalog, Strategy};
//!
//! let mut d = Datalog::new(r#"
//!     path(X,Y) :- edge(X,Y).
//!     path(X,Y) :- path(X,Z), edge(Z,Y).
//!     edge(1,2). edge(2,3). edge(3,1).
//! "#).unwrap();
//! assert_eq!(d.query("path(1, Y)", Strategy::Magic).unwrap().len(), 3);
//! ```

pub mod ast;
pub mod factor;
pub mod magic;
pub mod relation;
pub mod seminaive;
pub mod stratify;

use ast::{Arg, DatalogProgram, Literal, Value};
pub use seminaive::{EvalStats, Evaluator};
use stratify::stratify;
use xsb_syntax::{parse_query, Item, OpTable, SymbolTable, Term};

/// Evaluation strategy for [`Datalog::query`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// naive fixpoint (ablation baseline)
    Naive,
    /// semi-naive fixpoint over the whole program
    SemiNaive,
    /// magic-sets rewriting + semi-naive ("CORAL-def")
    Magic,
    /// factoring when the program matches, else magic ("CORAL-fac")
    MagicFactored,
}

/// Errors from the datalog front end.
#[derive(Debug)]
pub enum DatalogError {
    Parse(xsb_syntax::ParseError),
    Lower(ast::LowerError),
    NotStratified(stratify::NotStratified),
    Magic(magic::MagicError),
    Other(String),
}

impl std::fmt::Display for DatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatalogError::Parse(e) => write!(f, "{e}"),
            DatalogError::Lower(e) => write!(f, "{e}"),
            DatalogError::NotStratified(e) => write!(f, "{e}"),
            DatalogError::Magic(e) => write!(f, "{e}"),
            DatalogError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for DatalogError {}

/// A loaded datalog database with a query interface.
pub struct Datalog {
    pub syms: SymbolTable,
    ops: OpTable,
    pub program: DatalogProgram,
    /// statistics of the last evaluation
    pub last_stats: EvalStats,
}

impl Datalog {
    /// Parses and lowers a program.
    pub fn new(src: &str) -> Result<Datalog, DatalogError> {
        let mut syms = SymbolTable::new();
        let ops = OpTable::standard();
        let items = xsb_syntax::parse_program(src, &mut syms, &ops).map_err(DatalogError::Parse)?;
        let clauses: Vec<xsb_syntax::Clause> = items
            .into_iter()
            .filter_map(|i| match i {
                Item::Clause(c) => Some(c),
                Item::Directive(_) => None, // table decls are meaningless bottom-up
            })
            .collect();
        let program = DatalogProgram::from_clauses(&clauses).map_err(DatalogError::Lower)?;
        Ok(Datalog {
            syms,
            ops,
            program,
            last_stats: EvalStats::default(),
        })
    }

    /// Fast programmatic fact insertion (workload generators).
    pub fn add_fact(&mut self, pred: &str, args: &[Value]) {
        let s = self.syms.intern(pred);
        let tuple: Vec<_> = args
            .iter()
            .map(|v| self.program.consts.intern(*v))
            .collect();
        self.program.facts.push(((s, args.len() as u16), tuple));
    }

    /// Runs `query_src` (e.g. `"path(1, X)"`) under `strategy`, returning
    /// the matching tuples as [`Value`]s.
    pub fn query(
        &mut self,
        query_src: &str,
        strategy: Strategy,
    ) -> Result<Vec<Vec<Value>>, DatalogError> {
        let q = parse_query(query_src, &mut self.syms, &self.ops).map_err(DatalogError::Parse)?;
        if q.goals.len() != 1 {
            return Err(DatalogError::Other(
                "datalog queries are single goals".into(),
            ));
        }
        let goal = &q.goals[0];
        let (f, n) = goal
            .functor()
            .ok_or_else(|| DatalogError::Other("query must be an atom".into()))?;
        let pred = (f, n as u16);
        let mut args: Vec<Arg> = Vec::with_capacity(n);
        for a in goal.args() {
            args.push(match a {
                Term::Var(v) => Arg::Var(*v),
                Term::Int(i) => Arg::Const(self.program.consts.intern(Value::Int(*i))),
                Term::Atom(s) => Arg::Const(self.program.consts.intern(Value::Atom(*s))),
                _ => return Err(DatalogError::Other("query args must be datalog".into())),
            });
        }
        let pattern: Vec<Option<u32>> = args
            .iter()
            .map(|a| match a {
                Arg::Const(c) => Some(*c),
                Arg::Var(_) => None,
            })
            .collect();

        let (ev, answer_pred, consts) = match strategy {
            Strategy::Naive | Strategy::SemiNaive => {
                let strata = stratify(&self.program).map_err(DatalogError::NotStratified)?;
                let mut ev = Evaluator::from_facts(&self.program);
                ev.evaluate(&strata, strategy == Strategy::SemiNaive);
                (ev, pred, &self.program.consts)
            }
            Strategy::Magic => {
                let lit = Literal {
                    pred,
                    args: args.clone(),
                    negated: false,
                };
                let m = magic::magic_rewrite(&self.program, &lit, &mut self.syms)
                    .map_err(DatalogError::Magic)?;
                let strata = stratify(&m.program).map_err(DatalogError::NotStratified)?;
                let mut ev = Evaluator::from_facts(&m.program);
                ev.evaluate(&strata, true);
                self.last_stats = ev.stats;
                let answers = ev.answers(m.answer_pred, &pattern);
                return Ok(self.decode(&m.program, answers));
            }
            Strategy::MagicFactored => {
                // factoring applies to p(c, X) queries on linear programs
                let bound_first = matches!(args.first(), Some(Arg::Const(_)));
                let free_second = matches!(args.get(1), Some(Arg::Var(_)));
                if bound_first && free_second && n == 2 {
                    let c = match args[0] {
                        Arg::Const(c) => c,
                        _ => unreachable!(),
                    };
                    if let Some(fp) = factor::try_factor(&self.program, pred, c, &mut self.syms) {
                        let strata = stratify(&fp.program).map_err(DatalogError::NotStratified)?;
                        let mut ev = Evaluator::from_facts(&fp.program);
                        ev.evaluate(&strata, true);
                        self.last_stats = ev.stats;
                        let ys = ev.answers(fp.answer_pred, &[None]);
                        // f(Y) ⇔ p(c, Y)
                        let out = ys
                            .into_iter()
                            .map(|t| {
                                vec![
                                    fp.program.consts.value(match args[0] {
                                        Arg::Const(c) => c,
                                        _ => unreachable!(),
                                    }),
                                    fp.program.consts.value(t[0]),
                                ]
                            })
                            .collect();
                        return Ok(out);
                    }
                }
                return self.query(query_src, Strategy::Magic);
            }
        };
        self.last_stats = ev.stats;
        let answers = ev.answers(answer_pred, &pattern);
        let decoded = answers
            .into_iter()
            .map(|t| t.into_iter().map(|c| consts.value(c)).collect())
            .collect();
        Ok(decoded)
    }

    fn decode(&self, program: &DatalogProgram, answers: Vec<Vec<u32>>) -> Vec<Vec<Value>> {
        answers
            .into_iter()
            .map(|t| t.into_iter().map(|c| program.consts.value(c)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CYCLE: &str = "
        path(X,Y) :- edge(X,Y).
        path(X,Y) :- path(X,Z), edge(Z,Y).
        edge(1,2). edge(2,3). edge(3,1).
    ";

    #[test]
    fn all_strategies_agree_on_cycle() {
        for strat in [
            Strategy::Naive,
            Strategy::SemiNaive,
            Strategy::Magic,
            Strategy::MagicFactored,
        ] {
            let mut d = Datalog::new(CYCLE).unwrap();
            let mut rows = d.query("path(1, Y)", strat).unwrap();
            rows.sort();
            assert_eq!(rows.len(), 3, "{strat:?}");
        }
    }

    #[test]
    fn fanout_first_iteration_saturates() {
        let mut d =
            Datalog::new("path(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).").unwrap();
        for i in 1..=64 {
            d.add_fact("edge", &[Value::Int(1), Value::Int(i)]);
        }
        let rows = d.query("path(1, Y)", Strategy::Magic).unwrap();
        assert_eq!(rows.len(), 64);
    }

    #[test]
    fn add_fact_then_query() {
        let mut d = Datalog::new("tc(X,Y) :- e(X,Y).\ntc(X,Y) :- tc(X,Z), e(Z,Y).").unwrap();
        d.add_fact("e", &[Value::Int(5), Value::Int(6)]);
        d.add_fact("e", &[Value::Int(6), Value::Int(7)]);
        assert_eq!(d.query("tc(5, Y)", Strategy::SemiNaive).unwrap().len(), 2);
    }

    #[test]
    fn ground_query() {
        let mut d = Datalog::new(CYCLE).unwrap();
        assert_eq!(d.query("path(1, 3)", Strategy::Magic).unwrap().len(), 1);
        assert_eq!(d.query("path(1, 9)", Strategy::Magic).unwrap().len(), 0);
    }

    #[test]
    fn stratified_negation_via_seminaive() {
        let mut d = Datalog::new(
            "reach(1).\nreach(Y) :- reach(X), edge(X,Y).\n\
             unreach(X) :- node(X), tnot reach(X).\n\
             edge(1,2). node(1). node(2). node(3).",
        )
        .unwrap();
        let rows = d.query("unreach(X)", Strategy::SemiNaive).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(3));
    }

    #[test]
    fn atoms_as_constants() {
        let mut d = Datalog::new(
            "anc(X,Y) :- par(X,Y).\nanc(X,Y) :- par(X,Z), anc(Z,Y).\npar(tom,bob). par(bob,ann).",
        )
        .unwrap();
        let rows = d.query("anc(tom, Y)", Strategy::Magic).unwrap();
        assert_eq!(rows.len(), 2);
    }
}
