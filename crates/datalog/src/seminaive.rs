//! Naive and semi-naive bottom-up evaluation with stratified negation.
//!
//! This is the classic set-at-a-time fixpoint: per stratum, rules are
//! applied relation-at-a-time until no new tuples appear. Semi-naive
//! evaluation differentiates rules on each recursive body occurrence so
//! every derivation uses at least one *delta* tuple from the previous
//! iteration; naive evaluation (kept for the ablation benchmarks) rejoins
//! the full relations every round.

use crate::ast::{Arg, ConstId, DatalogProgram, Literal, PredKey, Rule};
use crate::relation::Relation;
use crate::stratify::Strata;
use std::collections::{HashMap, HashSet};

/// Evaluation statistics (reported by the ablation benches).
#[derive(Default, Debug, Clone, Copy)]
pub struct EvalStats {
    pub rounds: u64,
    pub rule_applications: u64,
    pub tuples_considered: u64,
    pub tuples_derived: u64,
}

/// The bottom-up evaluator: a store of relations plus the fixpoint loop.
#[derive(Default)]
pub struct Evaluator {
    pub relations: HashMap<PredKey, Relation>,
    pub stats: EvalStats,
}

impl Evaluator {
    /// Loads the program's facts as the extensional database.
    pub fn from_facts(program: &DatalogProgram) -> Evaluator {
        let mut ev = Evaluator::default();
        for (pred, tuple) in &program.facts {
            ev.relations
                .entry(*pred)
                .or_insert_with(|| Relation::new(pred.1))
                .insert(tuple.clone());
        }
        ev
    }

    fn relation_mut(&mut self, pred: PredKey) -> &mut Relation {
        self.relations
            .entry(pred)
            .or_insert_with(|| Relation::new(pred.1))
    }

    /// Runs the stratified fixpoint. `seminaive` selects differential
    /// evaluation; `false` is the naive ablation.
    pub fn evaluate(&mut self, strata: &Strata, seminaive: bool) {
        for rules in &strata.rules_by_stratum {
            if !rules.is_empty() {
                self.eval_stratum(rules, seminaive);
            }
        }
    }

    fn eval_stratum(&mut self, rules: &[Rule], seminaive: bool) {
        let derived: HashSet<PredKey> = rules.iter().map(|r| r.head.pred).collect();
        for &p in &derived {
            self.relation_mut(p);
        }

        // round 0: all-full evaluation seeds the deltas
        let mut delta: HashMap<PredKey, Relation> = HashMap::new();
        for r in rules {
            let derivations = self.eval_rule(r, None, &delta);
            for t in derivations {
                if self.relation_mut(r.head.pred).insert(t.clone()) {
                    self.stats.tuples_derived += 1;
                    delta
                        .entry(r.head.pred)
                        .or_insert_with(|| Relation::new(r.head.pred.1))
                        .insert(t);
                }
            }
        }
        self.stats.rounds += 1;

        loop {
            if delta.values().all(|d| d.is_empty()) {
                break;
            }
            let mut next_delta: HashMap<PredKey, Relation> = HashMap::new();
            for r in rules {
                if seminaive {
                    // differentiate on every recursive occurrence
                    let rec_positions: Vec<usize> = r
                        .body
                        .iter()
                        .enumerate()
                        .filter(|(_, l)| !l.negated && derived.contains(&l.pred))
                        .map(|(i, _)| i)
                        .collect();
                    if rec_positions.is_empty() {
                        continue; // non-recursive rule is saturated after round 0
                    }
                    for &occ in &rec_positions {
                        let derivations = self.eval_rule(r, Some(occ), &delta);
                        for t in derivations {
                            if self.relation_mut(r.head.pred).insert(t.clone()) {
                                self.stats.tuples_derived += 1;
                                next_delta
                                    .entry(r.head.pred)
                                    .or_insert_with(|| Relation::new(r.head.pred.1))
                                    .insert(t);
                            }
                        }
                    }
                } else {
                    let derivations = self.eval_rule(r, None, &delta);
                    for t in derivations {
                        if self.relation_mut(r.head.pred).insert(t.clone()) {
                            self.stats.tuples_derived += 1;
                            next_delta
                                .entry(r.head.pred)
                                .or_insert_with(|| Relation::new(r.head.pred.1))
                                .insert(t);
                        }
                    }
                }
            }
            self.stats.rounds += 1;
            delta = next_delta;
        }
    }

    /// Evaluates one rule, optionally constraining body occurrence
    /// `delta_occ` to the delta relation. Returns derived head tuples.
    fn eval_rule(
        &mut self,
        rule: &Rule,
        delta_occ: Option<usize>,
        delta: &HashMap<PredKey, Relation>,
    ) -> Vec<Vec<ConstId>> {
        self.stats.rule_applications += 1;
        let nvars = rule_var_count(rule);
        let mut env: Vec<Option<ConstId>> = vec![None; nvars];
        let mut out = Vec::new();
        self.join(rule, 0, delta_occ, delta, &mut env, &mut out);
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn join(
        &mut self,
        rule: &Rule,
        i: usize,
        delta_occ: Option<usize>,
        delta: &HashMap<PredKey, Relation>,
        env: &mut Vec<Option<ConstId>>,
        out: &mut Vec<Vec<ConstId>>,
    ) {
        if i == rule.body.len() {
            let tuple: Vec<ConstId> = rule
                .head
                .args
                .iter()
                .map(|a| match a {
                    Arg::Const(c) => *c,
                    Arg::Var(v) => env[*v as usize].expect("safe rule binds head vars"),
                })
                .collect();
            out.push(tuple);
            return;
        }
        let lit = &rule.body[i];
        if lit.negated {
            // stratified: the relation is fully computed; safe rules bind
            // all arguments by now
            let key: Vec<ConstId> = lit
                .args
                .iter()
                .map(|a| match a {
                    Arg::Const(c) => *c,
                    Arg::Var(v) => env[*v as usize].expect("safe negation is ground"),
                })
                .collect();
            let present = self
                .relations
                .get(&lit.pred)
                .map(|r| r.contains(&key))
                .unwrap_or(false);
            if !present {
                self.join(rule, i + 1, delta_occ, delta, env, out);
            }
            return;
        }

        // positive literal: index lookup on bound positions
        let mut positions: Vec<u16> = Vec::new();
        let mut key: Vec<ConstId> = Vec::new();
        for (p, a) in lit.args.iter().enumerate() {
            match a {
                Arg::Const(c) => {
                    positions.push(p as u16);
                    key.push(*c);
                }
                Arg::Var(v) => {
                    if let Some(c) = env[*v as usize] {
                        positions.push(p as u16);
                        key.push(c);
                    }
                }
            }
        }

        let use_delta = delta_occ == Some(i);
        let rows: Vec<Vec<ConstId>> = {
            let rel_opt: Option<&mut Relation> = if use_delta {
                // deltas are read-only here but `select` needs &mut for
                // index building; clone-select on a local handle
                None
            } else {
                self.relations.get_mut(&lit.pred)
            };
            match (use_delta, rel_opt) {
                (false, Some(rel)) => {
                    let row_ids: Vec<u32> = if positions.is_empty() {
                        (0..rel.len() as u32).collect()
                    } else {
                        rel.select(&positions, &key).to_vec()
                    };
                    row_ids.iter().map(|&r| rel.tuple(r).to_vec()).collect()
                }
                (false, None) => Vec::new(),
                (true, _) => match delta.get(&lit.pred) {
                    // deltas are small: scan with the bound-position filter
                    Some(d) => d
                        .tuples
                        .iter()
                        .filter(|t| {
                            positions
                                .iter()
                                .zip(&key)
                                .all(|(&p, &k)| t[p as usize] == k)
                        })
                        .cloned()
                        .collect(),
                    None => Vec::new(),
                },
            }
        };

        for t in rows {
            self.stats.tuples_considered += 1;
            // bind unbound vars, checking repeated-variable consistency
            let mut bound_here: Vec<u32> = Vec::new();
            let mut ok = true;
            for (p, a) in lit.args.iter().enumerate() {
                if let Arg::Var(v) = a {
                    match env[*v as usize] {
                        Some(c) => {
                            if c != t[p] {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            env[*v as usize] = Some(t[p]);
                            bound_here.push(*v);
                        }
                    }
                }
            }
            if ok {
                self.join(rule, i + 1, delta_occ, delta, env, out);
            }
            for v in bound_here {
                env[v as usize] = None;
            }
        }
    }

    /// Reads answers: tuples of `pred` matching the partially bound
    /// `pattern`.
    pub fn answers(&self, pred: PredKey, pattern: &[Option<ConstId>]) -> Vec<Vec<ConstId>> {
        match self.relations.get(&pred) {
            None => Vec::new(),
            Some(r) => r
                .tuples
                .iter()
                .filter(|t| {
                    pattern
                        .iter()
                        .zip(t.iter())
                        .all(|(p, v)| p.is_none_or(|c| c == *v))
                })
                .cloned()
                .collect(),
        }
    }
}

fn rule_var_count(rule: &Rule) -> usize {
    let mut max = 0usize;
    let mut visit = |l: &Literal| {
        for a in &l.args {
            if let Arg::Var(v) = a {
                max = max.max(*v as usize + 1);
            }
        }
    };
    visit(&rule.head);
    for l in &rule.body {
        visit(l);
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::DatalogProgram;
    use crate::stratify::stratify;
    use xsb_syntax::{parse_program, Clause, Item, OpTable, SymbolTable};

    fn setup(src: &str) -> (DatalogProgram, SymbolTable) {
        let mut syms = SymbolTable::new();
        let ops = OpTable::standard();
        let items = parse_program(src, &mut syms, &ops).unwrap();
        let clauses: Vec<Clause> = items
            .into_iter()
            .filter_map(|i| match i {
                Item::Clause(c) => Some(c),
                _ => None,
            })
            .collect();
        (DatalogProgram::from_clauses(&clauses).unwrap(), syms)
    }

    fn eval(src: &str, seminaive: bool) -> (Evaluator, SymbolTable) {
        let (p, syms) = setup(src);
        let strata = stratify(&p).unwrap();
        let mut ev = Evaluator::from_facts(&p);
        ev.evaluate(&strata, seminaive);
        (ev, syms)
    }

    const PATH_CYCLE: &str = "
        path(X,Y) :- edge(X,Y).
        path(X,Y) :- path(X,Z), edge(Z,Y).
        edge(1,2). edge(2,3). edge(3,1).
    ";

    #[test]
    fn transitive_closure_on_cycle() {
        let (ev, syms) = eval(PATH_CYCLE, true);
        let path = syms.lookup("path").unwrap();
        assert_eq!(ev.relations[&(path, 2)].len(), 9);
    }

    #[test]
    fn naive_and_seminaive_agree() {
        let (e1, syms) = eval(PATH_CYCLE, true);
        let (e2, _) = eval(PATH_CYCLE, false);
        let path = syms.lookup("path").unwrap();
        let mut a: Vec<_> = e1.relations[&(path, 2)].tuples.clone();
        let mut b: Vec<_> = e2.relations[&(path, 2)].tuples.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn seminaive_considers_fewer_tuples() {
        let mut chain =
            String::from("path(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\n");
        for i in 0..30 {
            chain.push_str(&format!("edge({i},{}).\n", i + 1));
        }
        let (e1, _) = eval(&chain, true);
        let (e2, _) = eval(&chain, false);
        assert!(
            e1.stats.tuples_considered * 2 < e2.stats.tuples_considered,
            "semi-naive {} vs naive {}",
            e1.stats.tuples_considered,
            e2.stats.tuples_considered
        );
    }

    #[test]
    fn stratified_negation_evaluates_lower_stratum_first() {
        let (ev, syms) = eval(
            "reach(1).\nreach(Y) :- reach(X), edge(X,Y).\n\
             unreach(X) :- node(X), tnot reach(X).\n\
             edge(1,2). edge(2,3).\n\
             node(1). node(2). node(3). node(4).",
            true,
        );
        let unreach = syms.lookup("unreach").unwrap();
        assert_eq!(ev.relations[&(unreach, 1)].len(), 1); // node 4
    }

    #[test]
    fn repeated_variable_join() {
        let (ev, syms) = eval(
            "loop(X) :- edge(X, X).\nedge(1,1). edge(1,2). edge(3,3).",
            true,
        );
        let l = syms.lookup("loop").unwrap();
        assert_eq!(ev.relations[&(l, 1)].len(), 2);
    }

    #[test]
    fn answers_pattern_filter() {
        let (ev, syms) = eval(PATH_CYCLE, true);
        let path = syms.lookup("path").unwrap();
        // bind first arg to const id of 1
        let one = ev.relations.keys().find(|_| true).map(|_| ()).map(|_| ());
        let _ = one;
        // const ids: look up via program consts is gone; select by scanning
        let all = ev.answers((path, 2), &[None, None]);
        assert_eq!(all.len(), 9);
        let c = all[0][0];
        let filtered = ev.answers((path, 2), &[Some(c), None]);
        assert_eq!(filtered.len(), 3);
    }

    #[test]
    fn same_generation_bottom_up() {
        let (ev, syms) = eval(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,XP), sg(XP,YP), down(YP,Y).\n\
             up(a,p). up(b,p). flat(p,p). down(p,a). down(p,b).",
            true,
        );
        let sg = syms.lookup("sg").unwrap();
        // sg(a,a), sg(a,b), sg(b,a), sg(b,b), sg(p,p)
        assert_eq!(ev.relations[&(sg, 2)].len(), 5);
    }
}
