//! Datalog program representation, lowered from the shared syntax AST.
//!
//! The bottom-up baseline is deliberately a classic *interpretive,
//! set-at-a-time* evaluator (the architecture of CORAL/LDL that §5 of the
//! paper compares against): constants are interned to dense ids, literals
//! are flat, and rules are evaluated relation-at-a-time.

use std::collections::HashMap;
use xsb_syntax::{well_known, Clause, Sym, SymbolTable, Term};

/// Interned constant id.
pub type ConstId = u32;
/// Predicate key: name and arity.
pub type PredKey = (Sym, u16);

/// A constant value (no function symbols — this is datalog).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Value {
    Int(i64),
    Atom(Sym),
}

impl Value {
    pub fn display(self, syms: &SymbolTable) -> String {
        match self {
            Value::Int(i) => i.to_string(),
            Value::Atom(s) => syms.name(s).to_string(),
        }
    }
}

/// Interning table for constants.
#[derive(Default, Debug)]
pub struct ConstTable {
    values: Vec<Value>,
    map: HashMap<Value, ConstId>,
}

impl ConstTable {
    pub fn intern(&mut self, v: Value) -> ConstId {
        if let Some(&id) = self.map.get(&v) {
            return id;
        }
        let id = self.values.len() as ConstId;
        self.values.push(v);
        self.map.insert(v, id);
        id
    }

    pub fn value(&self, id: ConstId) -> Value {
        self.values[id as usize]
    }

    pub fn lookup(&self, v: Value) -> Option<ConstId> {
        self.map.get(&v).copied()
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A literal argument.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Arg {
    Var(u32),
    Const(ConstId),
}

/// A body or head literal.
#[derive(Clone, Debug, PartialEq)]
pub struct Literal {
    pub pred: PredKey,
    pub args: Vec<Arg>,
    pub negated: bool,
}

impl Literal {
    pub fn arity(&self) -> u16 {
        self.args.len() as u16
    }
}

/// A datalog rule `head :- body`.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    pub head: Literal,
    pub body: Vec<Literal>,
}

impl Rule {
    /// Range restriction (safety): every head variable and every variable
    /// in a negated literal must occur in a positive body literal.
    pub fn is_safe(&self) -> bool {
        let mut positive_vars = Vec::new();
        for l in &self.body {
            if !l.negated {
                for a in &l.args {
                    if let Arg::Var(v) = a {
                        if !positive_vars.contains(v) {
                            positive_vars.push(*v);
                        }
                    }
                }
            }
        }
        let check = |l: &Literal| {
            l.args.iter().all(|a| match a {
                Arg::Var(v) => positive_vars.contains(v),
                Arg::Const(_) => true,
            })
        };
        check(&self.head) && self.body.iter().filter(|l| l.negated).all(check)
    }
}

/// A lowered datalog program: facts (ground atoms) plus rules.
#[derive(Default, Debug)]
pub struct DatalogProgram {
    pub consts: ConstTable,
    pub facts: Vec<(PredKey, Vec<ConstId>)>,
    pub rules: Vec<Rule>,
}

/// Lowering error.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError(pub String);

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "datalog lowering error: {}", self.0)
    }
}

impl std::error::Error for LowerError {}

impl DatalogProgram {
    /// Lowers syntax-level clauses into the datalog representation.
    /// Negation markers accepted: `\+`, `tnot`, `e_tnot`, `not`.
    pub fn from_clauses(clauses: &[Clause]) -> Result<DatalogProgram, LowerError> {
        let mut p = DatalogProgram::default();
        for c in clauses {
            p.add_clause(c)?;
        }
        Ok(p)
    }

    pub fn add_clause(&mut self, c: &Clause) -> Result<(), LowerError> {
        if c.body.is_empty() {
            let (pred, args) = self.lower_atom(&c.head)?;
            let ground: Result<Vec<ConstId>, LowerError> = args
                .into_iter()
                .map(|a| match a {
                    Arg::Const(id) => Ok(id),
                    Arg::Var(_) => Err(LowerError("facts must be ground".into())),
                })
                .collect();
            self.facts.push((pred, ground?));
        } else {
            let head = {
                let (pred, args) = self.lower_atom(&c.head)?;
                Literal {
                    pred,
                    args,
                    negated: false,
                }
            };
            let mut body = Vec::with_capacity(c.body.len());
            for g in &c.body {
                body.push(self.lower_literal(g)?);
            }
            let rule = Rule { head, body };
            if !rule.is_safe() {
                return Err(LowerError(format!(
                    "unsafe rule (range restriction violated) for {:?}",
                    rule.head.pred
                )));
            }
            self.rules.push(rule);
        }
        Ok(())
    }

    fn lower_literal(&mut self, g: &Term) -> Result<Literal, LowerError> {
        match g {
            Term::Compound(f, args)
                if args.len() == 1
                    && (*f == well_known::NAF
                        || *f == well_known::TNOT
                        || *f == well_known::E_TNOT
                        || *f == well_known::NOT) =>
            {
                let (pred, args) = self.lower_atom(&args[0])?;
                Ok(Literal {
                    pred,
                    args,
                    negated: true,
                })
            }
            other => {
                let (pred, args) = self.lower_atom(other)?;
                Ok(Literal {
                    pred,
                    args,
                    negated: false,
                })
            }
        }
    }

    fn lower_atom(&mut self, t: &Term) -> Result<(PredKey, Vec<Arg>), LowerError> {
        let (f, n) = t
            .functor()
            .ok_or_else(|| LowerError(format!("not an atom: {t:?}")))?;
        let mut args = Vec::with_capacity(n);
        for a in t.args() {
            args.push(match a {
                Term::Var(v) => Arg::Var(*v),
                Term::Int(i) => Arg::Const(self.consts.intern(Value::Int(*i))),
                Term::Atom(s) => Arg::Const(self.consts.intern(Value::Atom(*s))),
                other => {
                    return Err(LowerError(format!(
                        "function symbols are not datalog: {other:?}"
                    )))
                }
            });
        }
        Ok(((f, n as u16), args))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsb_syntax::{parse_program, Item, OpTable};

    fn lower(src: &str) -> (DatalogProgram, SymbolTable) {
        let mut syms = SymbolTable::new();
        let ops = OpTable::standard();
        let items = parse_program(src, &mut syms, &ops).unwrap();
        let clauses: Vec<Clause> = items
            .into_iter()
            .filter_map(|i| match i {
                Item::Clause(c) => Some(c),
                _ => None,
            })
            .collect();
        (DatalogProgram::from_clauses(&clauses).unwrap(), syms)
    }

    #[test]
    fn lowers_facts_and_rules() {
        let (p, syms) = lower("edge(1,2). path(X,Y) :- edge(X,Y).");
        assert_eq!(p.facts.len(), 1);
        assert_eq!(p.rules.len(), 1);
        let edge = syms.lookup("edge").unwrap();
        assert_eq!(p.facts[0].0, (edge, 2));
    }

    #[test]
    fn lowers_negation_markers() {
        let (p, _) = lower("win(X) :- move(X,Y), tnot win(Y).\nmove(1,2).");
        assert!(p.rules[0].body[1].negated);
    }

    #[test]
    fn rejects_function_symbols() {
        let mut syms = SymbolTable::new();
        let ops = OpTable::standard();
        let items = parse_program("p(f(X)) :- q(X).", &mut syms, &ops).unwrap();
        let clauses: Vec<Clause> = items
            .into_iter()
            .filter_map(|i| match i {
                Item::Clause(c) => Some(c),
                _ => None,
            })
            .collect();
        assert!(DatalogProgram::from_clauses(&clauses).is_err());
    }

    #[test]
    fn rejects_unsafe_rules() {
        let mut syms = SymbolTable::new();
        let ops = OpTable::standard();
        let items = parse_program("p(X, Y) :- q(X).", &mut syms, &ops).unwrap();
        let clauses: Vec<Clause> = items
            .into_iter()
            .filter_map(|i| match i {
                Item::Clause(c) => Some(c),
                _ => None,
            })
            .collect();
        assert!(DatalogProgram::from_clauses(&clauses).is_err());
    }

    #[test]
    fn safety_allows_negated_bound_vars() {
        let (p, _) = lower("unreach(X) :- node(X), tnot reach(X).\nnode(1).");
        assert_eq!(p.rules.len(), 1);
    }
}
