//! Magic-sets rewriting (the goal-directed transformation the systems in
//! paper Table 1 rely on: Aditi, LDL "Magic Sets", CORAL "Magic
//! Templates").
//!
//! Given a query with some arguments bound, the program is *adorned*
//! (left-to-right sideways information passing) and for every adorned
//! derived predicate a *magic* predicate is introduced that computes the
//! relevant calls; each rule is guarded by the magic predicate of its head.
//! The paper (§2) observes "the magic facts of the magic template method
//! appear to correspond to the tabled subgoals of an SLG evaluation".

use crate::ast::{Arg, DatalogProgram, Literal, PredKey, Rule};
use std::collections::{HashMap, HashSet, VecDeque};
use xsb_syntax::SymbolTable;

/// Adornment: per argument, bound (`true`) or free.
pub type Adornment = Vec<bool>;

/// Rewrite error.
#[derive(Debug, Clone, PartialEq)]
pub struct MagicError(pub String);

impl std::fmt::Display for MagicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "magic rewrite error: {}", self.0)
    }
}

impl std::error::Error for MagicError {}

/// Result of the rewriting: the transformed program (sharing the constant
/// table), plus the adorned answer predicate for the query.
pub struct MagicProgram {
    pub program: DatalogProgram,
    pub answer_pred: PredKey,
}

fn adorn_suffix(a: &Adornment) -> String {
    a.iter().map(|&b| if b { 'b' } else { 'f' }).collect()
}

/// Rewrites `program` for `query` (constants = bound arguments).
/// Supports positive derived predicates; negation is allowed only on base
/// predicates (CORAL similarly restricted magic through negation).
pub fn magic_rewrite(
    program: &DatalogProgram,
    query: &Literal,
    syms: &mut SymbolTable,
) -> Result<MagicProgram, MagicError> {
    let derived: HashSet<PredKey> = program.rules.iter().map(|r| r.head.pred).collect();
    for r in &program.rules {
        for l in &r.body {
            if l.negated && derived.contains(&l.pred) {
                return Err(MagicError(
                    "negation on derived predicates is not supported by this magic rewrite".into(),
                ));
            }
        }
    }
    if !derived.contains(&query.pred) {
        return Err(MagicError("query predicate has no rules".into()));
    }

    // group rules by head pred
    let mut rules_of: HashMap<PredKey, Vec<&Rule>> = HashMap::new();
    for r in &program.rules {
        rules_of.entry(r.head.pred).or_default().push(r);
    }

    let query_adornment: Adornment = query
        .args
        .iter()
        .map(|a| matches!(a, Arg::Const(_)))
        .collect();

    // allocate adorned + magic predicate names on demand
    let mut adorned_name: HashMap<(PredKey, Adornment), PredKey> = HashMap::new();
    let mut magic_name: HashMap<(PredKey, Adornment), PredKey> = HashMap::new();
    let name_of = |map: &mut HashMap<(PredKey, Adornment), PredKey>,
                   prefix: &str,
                   pred: PredKey,
                   a: &Adornment,
                   arity: u16,
                   syms: &mut SymbolTable|
     -> PredKey {
        if let Some(&k) = map.get(&(pred, a.clone())) {
            return k;
        }
        let base = syms.name(pred.0).to_string();
        let s = syms.intern(&format!("{prefix}{base}_{}", adorn_suffix(a)));
        let k = (s, arity);
        map.insert((pred, a.clone()), k);
        k
    };

    // the rewritten program shares constants with the source
    let mut out = DatalogProgram {
        consts: clone_consts(program),
        facts: program.facts.clone(),
        ..DatalogProgram::default()
    };

    let mut seen: HashSet<(PredKey, Adornment)> = HashSet::new();
    let mut work: VecDeque<(PredKey, Adornment)> = VecDeque::new();
    work.push_back((query.pred, query_adornment.clone()));
    seen.insert((query.pred, query_adornment.clone()));

    while let Some((pred, adornment)) = work.pop_front() {
        let bound_count = adornment.iter().filter(|&&b| b).count() as u16;
        let p_ad = name_of(&mut adorned_name, "", pred, &adornment, pred.1, syms);
        let m_p = name_of(&mut magic_name, "m_", pred, &adornment, bound_count, syms);

        for rule in rules_of.get(&pred).cloned().unwrap_or_default() {
            // bound head variables seed the SIP
            let mut bound_vars: HashSet<u32> = HashSet::new();
            let mut magic_head_args: Vec<Arg> = Vec::new();
            for (arg, &is_bound) in rule.head.args.iter().zip(&adornment) {
                if is_bound {
                    magic_head_args.push(*arg);
                    if let Arg::Var(v) = arg {
                        bound_vars.insert(*v);
                    }
                }
            }
            let magic_guard = Literal {
                pred: m_p,
                args: magic_head_args,
                negated: false,
            };

            let mut new_body: Vec<Literal> = vec![magic_guard.clone()];
            for lit in &rule.body {
                if !lit.negated && derived.contains(&lit.pred) {
                    // adorn this call site
                    let a: Adornment = lit
                        .args
                        .iter()
                        .map(|arg| match arg {
                            Arg::Const(_) => true,
                            Arg::Var(v) => bound_vars.contains(v),
                        })
                        .collect();
                    let bc = a.iter().filter(|&&b| b).count() as u16;
                    let q_ad = name_of(&mut adorned_name, "", lit.pred, &a, lit.pred.1, syms);
                    let m_q = name_of(&mut magic_name, "m_", lit.pred, &a, bc, syms);
                    // magic rule: m_q(bound args) :- <prefix so far>
                    let m_args: Vec<Arg> = lit
                        .args
                        .iter()
                        .zip(&a)
                        .filter(|(_, &b)| b)
                        .map(|(arg, _)| *arg)
                        .collect();
                    out.rules.push(Rule {
                        head: Literal {
                            pred: m_q,
                            args: m_args,
                            negated: false,
                        },
                        body: new_body.clone(),
                    });
                    if seen.insert((lit.pred, a.clone())) {
                        work.push_back((lit.pred, a));
                    }
                    new_body.push(Literal {
                        pred: q_ad,
                        args: lit.args.clone(),
                        negated: false,
                    });
                } else {
                    new_body.push(lit.clone());
                }
                // every variable of a positive literal is bound after it
                if !lit.negated {
                    for arg in &lit.args {
                        if let Arg::Var(v) = arg {
                            bound_vars.insert(*v);
                        }
                    }
                }
            }
            out.rules.push(Rule {
                head: Literal {
                    pred: p_ad,
                    args: rule.head.args.clone(),
                    negated: false,
                },
                body: new_body,
            });
        }
    }

    // the magic seed for the query
    let seed: Vec<_> = query
        .args
        .iter()
        .filter_map(|a| match a {
            Arg::Const(c) => Some(*c),
            Arg::Var(_) => None,
        })
        .collect();
    let m_query = magic_name[&(query.pred, query_adornment.clone())];
    out.facts.push((m_query, seed));

    let answer_pred = adorned_name[&(query.pred, query_adornment)];
    Ok(MagicProgram {
        program: out,
        answer_pred,
    })
}

pub(crate) fn clone_consts(p: &DatalogProgram) -> crate::ast::ConstTable {
    // rebuild the table (ids preserved because interning order replays)
    let mut t = crate::ast::ConstTable::default();
    for i in 0..p.consts.len() {
        let v = p.consts.value(i as u32);
        let id = t.intern(v);
        debug_assert_eq!(id, i as u32);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{DatalogProgram, Value};
    use crate::seminaive::Evaluator;
    use crate::stratify::stratify;
    use xsb_syntax::{parse_program, Clause, Item, OpTable};

    fn setup(src: &str) -> (DatalogProgram, SymbolTable) {
        let mut syms = SymbolTable::new();
        let ops = OpTable::standard();
        let items = parse_program(src, &mut syms, &ops).unwrap();
        let clauses: Vec<Clause> = items
            .into_iter()
            .filter_map(|i| match i {
                Item::Clause(c) => Some(c),
                _ => None,
            })
            .collect();
        (DatalogProgram::from_clauses(&clauses).unwrap(), syms)
    }

    const LONG_CHAIN: &str = "
        path(X,Y) :- edge(X,Y).
        path(X,Y) :- path(X,Z), edge(Z,Y).
        edge(1,2). edge(2,3). edge(3,4). edge(4,5).
        edge(10,11). edge(11,12). edge(12,13).
    ";

    #[test]
    fn magic_computes_only_relevant_facts() {
        let (mut p, mut syms) = setup(LONG_CHAIN);
        let path = syms.lookup("path").unwrap();
        let one = p.consts.intern(Value::Int(1));
        let query = Literal {
            pred: (path, 2),
            args: vec![Arg::Const(one), Arg::Var(0)],
            negated: false,
        };
        let m = magic_rewrite(&p, &query, &mut syms).unwrap();
        let strata = stratify(&m.program).unwrap();
        let mut ev = Evaluator::from_facts(&m.program);
        ev.evaluate(&strata, true);
        let answers = ev.answers(m.answer_pred, &[Some(one), None]);
        assert_eq!(answers.len(), 4, "path(1, _) reaches 2,3,4,5");
        // the disconnected component 10..13 was never touched
        let all = ev.answers(m.answer_pred, &[None, None]);
        assert_eq!(all.len(), 4, "goal direction prunes the other component");
    }

    #[test]
    fn magic_agrees_with_full_seminaive() {
        let (mut p, mut syms) = setup(LONG_CHAIN);
        let path = syms.lookup("path").unwrap();
        let one = p.consts.intern(Value::Int(1));
        // full bottom-up
        let strata = stratify(&p).unwrap();
        let mut full = Evaluator::from_facts(&p);
        full.evaluate(&strata, true);
        let mut expect = full.answers((path, 2), &[Some(one), None]);
        // magic
        let query = Literal {
            pred: (path, 2),
            args: vec![Arg::Const(one), Arg::Var(0)],
            negated: false,
        };
        let m = magic_rewrite(&p, &query, &mut syms).unwrap();
        let mstrata = stratify(&m.program).unwrap();
        let mut ev = Evaluator::from_facts(&m.program);
        ev.evaluate(&mstrata, true);
        let mut got = ev.answers(m.answer_pred, &[Some(one), None]);
        expect.sort();
        got.sort();
        assert_eq!(expect, got);
    }

    #[test]
    fn free_query_adornment_degenerates_gracefully() {
        let (p, mut syms) = setup(LONG_CHAIN);
        let path = syms.lookup("path").unwrap();
        let query = Literal {
            pred: (path, 2),
            args: vec![Arg::Var(0), Arg::Var(1)],
            negated: false,
        };
        let m = magic_rewrite(&p, &query, &mut syms).unwrap();
        let strata = stratify(&m.program).unwrap();
        let mut ev = Evaluator::from_facts(&m.program);
        ev.evaluate(&strata, true);
        // ff adornment: all 4+3+2+1 + 3+2+1 = 16 path facts
        assert_eq!(ev.answers(m.answer_pred, &[None, None]).len(), 16);
    }

    #[test]
    fn same_generation_with_bound_first_arg() {
        let (mut p, mut syms) = setup(
            "sg(X,Y) :- flat(X,Y).
             sg(X,Y) :- up(X,XP), sg(XP,YP), down(YP,Y).
             up(a,p). up(b,p). flat(p,p). down(p,a). down(p,b).",
        );
        let sg = syms.lookup("sg").unwrap();
        let a = syms.lookup("a").unwrap();
        let ca = p.consts.intern(Value::Atom(a));
        let query = Literal {
            pred: (sg, 2),
            args: vec![Arg::Const(ca), Arg::Var(0)],
            negated: false,
        };
        let m = magic_rewrite(&p, &query, &mut syms).unwrap();
        let strata = stratify(&m.program).unwrap();
        let mut ev = Evaluator::from_facts(&m.program);
        ev.evaluate(&strata, true);
        // sg(a,a) and sg(a,b)
        assert_eq!(ev.answers(m.answer_pred, &[Some(ca), None]).len(), 2);
    }

    #[test]
    fn rejects_negation_on_derived() {
        let (p, mut syms) =
            setup("q(X) :- base(X), tnot r(X).\nr(X) :- base2(X).\nbase(1). base2(2).");
        let q = syms.lookup("q").unwrap();
        let query = Literal {
            pred: (q, 1),
            args: vec![Arg::Var(0)],
            negated: false,
        };
        assert!(magic_rewrite(&p, &query, &mut syms).is_err());
    }
}
