//! A minimal, zero-dependency stand-in for the `proptest` crate.
//!
//! The offline workspace cannot fetch the real `proptest`, but the
//! property tests (`tests/proptest_invariants.rs`, `tests/cross_engine.rs`,
//! `crates/core/tests/machine_props.rs`) are too valuable to leave dead.
//! This crate implements exactly the API surface those files use —
//! `Strategy` with `prop_map`/`prop_recursive`/`boxed`, integer-range and
//! tuple strategies, `collection::vec`, `sample::select`, and the
//! `proptest!`/`prop_oneof!`/`prop_assert*!` macros — over a deterministic
//! xorshift generator seeded from the test name, so runs are reproducible
//! and need no shrinking machinery. It is NOT a general replacement: no
//! shrinking, no persistence, no `any::<T>()`.

/// Deterministic xorshift64* generator. Every test gets a seed derived
/// from its own name, so failures reproduce exactly across runs.
#[derive(Debug, Clone)]
pub struct Prng(u64);

impl Prng {
    pub fn new(seed: u64) -> Self {
        // avoid the all-zero fixpoint
        Prng(seed | 0x9e37_79b9_7f4a_7c15)
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// FNV-1a, used to turn a test name into a seed.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

pub mod strategy {
    use super::Prng;
    use std::rc::Rc;

    /// A generator of values of type `Value`. Unlike the real proptest,
    /// generation is direct (no value trees, no shrinking).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut Prng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Builds a bounded recursive strategy: `depth` levels where each
        /// level picks a leaf or one branch over the previous level. The
        /// `_desired_size`/`_expected_branch` hints of the real API are
        /// accepted and ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let branch = f(cur).boxed();
                let l = leaf.clone();
                cur = BoxedStrategy(Rc::new(move |rng: &mut Prng| {
                    if rng.below(2) == 0 {
                        l.generate(rng)
                    } else {
                        branch.generate(rng)
                    }
                }));
            }
            cur
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |rng: &mut Prng| s.generate(rng)))
        }
    }

    /// A type-erased, cloneable strategy (the closure is shared).
    pub struct BoxedStrategy<V>(pub(crate) Rc<dyn Fn(&mut Prng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut Prng) -> V {
            (self.0)(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut Prng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives — the `prop_oneof!` body.
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union(options)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut Prng) -> V {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Prng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Prng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(width) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i64, i32, u32, u64, usize, u16, u8);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut Prng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut Prng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    /// `Just(v)` — always produces a clone of `v`.
    #[derive(Clone, Debug)]
    pub struct Just<V>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut Prng) -> V {
            self.0.clone()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::Prng;

    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Prng) -> Vec<S::Value> {
            let width = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(width) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::Prng;

    pub struct Select<T: 'static>(&'static [T]);

    /// Uniform choice from a static slice (values are cloned out).
    pub fn select<T: Clone + 'static>(options: &'static [T]) -> Select<T> {
        assert!(!options.is_empty(), "select from empty slice");
        Select(options)
    }

    impl<T: Clone + 'static> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut Prng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod test_runner {
    use super::{fnv1a, Prng};

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The error produced by `prop_assert*!` failures.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Drives one property: `cases` generated inputs through `case`.
    /// Deterministic — the RNG stream depends only on the test name.
    pub fn run(
        name: &str,
        config: &ProptestConfig,
        mut case: impl FnMut(&mut Prng) -> Result<(), TestCaseError>,
    ) {
        let mut rng = Prng::new(fnv1a(name));
        for i in 0..config.cases {
            if let Err(e) = case(&mut rng) {
                panic!("property {name} failed at case {i}/{}: {e}", config.cases);
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs. The body is
/// wrapped in a closure returning `Result<(), TestCaseError>`, so `?` and
/// the `prop_assert*!` macros work as in the real proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($config) $($rest)*);
    };
    (@with ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run(stringify!($name), &config, |rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), rng);)*
                let mut case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                case()
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} == {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Prng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Prng::new(42);
        for _ in 0..500 {
            let v = Strategy::generate(&(-50i64..50), &mut rng);
            assert!((-50..50).contains(&v));
            let w = Strategy::generate(&(1i64..=6), &mut rng);
            assert!((1..=6).contains(&w));
            let u = Strategy::generate(&(100u32..104), &mut rng);
            assert!((100..104).contains(&u));
        }
    }

    #[test]
    fn vec_and_tuple_shapes() {
        let mut rng = Prng::new(7);
        let s = crate::collection::vec((1i64..=8, 1i64..=8), 1..20);
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((1..20).contains(&v.len()));
            assert!(v
                .iter()
                .all(|&(a, b)| (1..=8).contains(&a) && (1..=8).contains(&b)));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = |seed| {
            let mut rng = Prng::new(seed);
            let s = crate::collection::vec(0i64..100, 1..10);
            (0..20)
                .map(|_| Strategy::generate(&s, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(9), gen(9));
        assert_ne!(gen(9), gen(10));
    }

    #[test]
    fn select_draws_from_slice() {
        static OPTS: [&str; 3] = ["a", "b", "c"];
        let s = crate::sample::select(&OPTS);
        let mut rng = Prng::new(3);
        for _ in 0..50 {
            assert!(OPTS.contains(&Strategy::generate(&s, &mut rng)));
        }
    }

    #[test]
    fn recursive_strategy_is_depth_bounded() {
        #[derive(Debug, Clone, PartialEq)]
        enum T {
            Leaf(i64),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(k) => 1 + k.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..10)
            .prop_map(T::Leaf)
            .prop_recursive(3, 20, 3, |inner| {
                crate::collection::vec(inner, 1..3).prop_map(T::Node)
            });
        let mut rng = Prng::new(11);
        for _ in 0..200 {
            assert!(depth(&Strategy::generate(&strat, &mut rng)) <= 3);
        }
    }

    // the macro surface itself, end to end
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_pipeline_works(mut xs in crate::collection::vec(0i64..50, 0..8), k in 1i64..=4) {
            xs.push(k);
            prop_assert!(!xs.is_empty());
            prop_assert_eq!(*xs.last().unwrap(), k);
            prop_assert_ne!(xs.len(), 0, "len {}", xs.len());
            let helper = || -> Result<(), TestCaseError> {
                prop_assert!(k >= 1);
                Ok(())
            };
            helper()?;
        }
    }
}
