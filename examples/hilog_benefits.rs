//! HiLog data modeling — the benefits-packages example from paper §4.7.
//!
//! ```sh
//! cargo run --example hilog_benefits
//! ```
//!
//! HiLog lets a term name a *set* (a predicate): `package1` denotes the
//! set of John's benefits, and parameterized set operations like
//! `intersect_2(P, Q)` are ordinary HiLog predicates. The engine encodes
//! everything into first-order `apply` terms and compiles them; known
//! calls are specialized (§4.7) and first-string indexing keeps dispatch
//! sharp (§4.5).

use xsb::core::Engine;

fn main() {
    let mut engine = Engine::new();

    engine
        .consult(
            r#"
            :- hilog package1.
            :- hilog package2.
            :- hilog intersect_2.
            :- hilog union_2.

            % benefits are sets of (type, required|optional) pairs
            package1(health_ins, required).
            package1(life_ins, optional).
            package1(free_car, optional).
            package2(free_car, optional).
            package2(long_vacations, optional).

            benefits('John', package1).
            benefits('Bob', package2).

            % parameterized set operations (paper §4.7)
            intersect_2(S1, S2)(X, Y) :- S1(X, Y), S2(X, Y).
            union_2(S1, S2)(X, Y) :- S1(X, Y).
            union_2(S1, S2)(X, Y) :- S2(X, Y).
        "#,
        )
        .expect("program loads");

    // ?- benefits('John', P), P(X, Y).
    println!("John's benefits (via the set-valued variable P):");
    for sol in engine
        .query("benefits('John', P), P(X, Y)")
        .expect("query runs")
    {
        println!(
            "  {} ({})",
            sol.get("X").unwrap().display(&engine.syms),
            sol.get("Y").unwrap().display(&engine.syms)
        );
    }

    println!("\ncommon benefits of John and Bob:");
    for sol in engine
        .query("benefits('John',P), benefits('Bob',Q), intersect_2(P,Q)(X,Y)")
        .expect("query runs")
    {
        println!("  {}", sol.get("X").unwrap().display(&engine.syms));
    }

    let union = engine
        .count("benefits('John',P), benefits('Bob',Q), union_2(P,Q)(X,Y)")
        .expect("query runs");
    println!("\n|union of the two packages| = {union} tuples");

    // a parameterized transitive closure: path(Graph) is a HiLog predicate
    let mut graphs = Engine::new();
    graphs
        .consult(
            r#"
            :- hilog flights.
            :- hilog trains.
            path(G)(X, Y) :- G(X, Y).
            path(G)(X, Y) :- G(X, Z), path(G)(Z, Y).

            flights(london, paris). flights(paris, rome).
            trains(london, brussels). trains(brussels, berlin).
        "#,
        )
        .expect("program loads");
    for g in ["flights", "trains"] {
        println!("\nreachable from london by {g}:");
        for sol in graphs
            .query(&format!("path({g})(london, X)"))
            .expect("query runs")
        {
            println!("  {}", sol.get("X").unwrap().display(&graphs.syms));
        }
    }
}
