//! The stalemate game (paper Example 4.1): three negation strategies and
//! the well-founded semantics.
//!
//! ```sh
//! cargo run --example win_game
//! ```
//!
//! `win(X) :- move(X, Y), NOT win(Y)` — a position wins iff it has a move
//! to a losing position. On acyclic move graphs the program is modularly
//! stratified and the engine evaluates it with `tnot` (exhaustive SLG) or
//! `e_tnot` (existential negation, which stops a subgoal at its first
//! answer and frees its table — the SLDNF-like √2ⁿ behaviour of Table 2).
//! On cyclic graphs the program is not stratified: the engine reports it,
//! and the WFS evaluator assigns *undefined* to drawn positions.

use xsb::core::{Engine, EngineError};
use xsb::wfs::{Truth, Wfs};
use xsb_syntax::Term;

fn game(neg: &str, moves: &[(i64, i64)]) -> Engine {
    let mut e = Engine::new();
    e.declare_dynamic("move", 2).unwrap();
    e.consult(&format!(
        ":- table win/1.\nwin(X) :- move(X, Y), {neg} win(Y).\n"
    ))
    .unwrap();
    let mv = e.syms.intern("move");
    for &(a, b) in moves {
        e.assert_term(&Term::Compound(mv, vec![Term::Int(a), Term::Int(b)]))
            .unwrap();
    }
    e
}

fn main() {
    // a complete binary tree of height 4 (31 nodes): leaves lose
    let mut moves = Vec::new();
    for n in 1i64..=15 {
        moves.push((n, 2 * n));
        moves.push((n, 2 * n + 1));
    }

    println!("win/1 over a complete binary tree of height 4:");
    for neg in ["tnot", "e_tnot"] {
        let mut e = game(neg, &moves);
        let win1 = e.holds("win(1)").unwrap();
        println!(
            "  {neg:6}  win(1) = {win1:5}   subgoals evaluated = {}",
            e.metrics().get(xsb_obs::Counter::SubgoalsCreated)
        );
    }
    println!("  (paper Fig. 2: SLDNF-like strategies evaluate 13 of 31 subgoals)");

    // the same game over a cyclic graph is NOT stratified
    println!("\nwin/1 over a cycle 1 → 2 → 1:");
    let mut cyclic = game("tnot", &[(1, 2), (2, 1)]);
    match cyclic.holds("win(1)") {
        Err(EngineError::NotStratified(p)) => {
            println!("  engine: not modularly stratified (loop through {p})")
        }
        other => println!("  unexpected: {other:?}"),
    }

    // ... which is exactly what the WFS meta-evaluator is for (paper §1)
    let mut w = Wfs::new(
        "win(X) :- move(X,Y), tnot win(Y).\n\
         move(1,2). move(2,1).\n\
         move(3,4).",
    )
    .unwrap();
    println!("\nwell-founded model of the cyclic game:");
    for node in 1..=4 {
        let atom = format!("win({node})");
        let verdict = match w.truth(&atom).unwrap() {
            Truth::True => "true   (winning position)",
            Truth::False => "false  (losing position)",
            Truth::Undefined => "undef  (drawn: infinite play)",
        };
        println!("  {atom}: {verdict}");
    }

    // §3.1: the undefined residual admits multiple stable models — each a
    // consistent "world" in which one of the cycling players wins
    println!("\nstable models of the cyclic game (wins only):");
    for model in w.stable_models(16).expect("small residual") {
        let wins: Vec<String> = model.into_iter().filter(|a| a.starts_with("win")).collect();
        println!("  {{ {} }}", wins.join(", "));
    }
}
