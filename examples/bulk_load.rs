//! Bulk loading through the three §4.6 interfaces, timed.
//!
//! ```sh
//! cargo run --release --example bulk_load
//! ```
//!
//! 1. the general reader (full term parsing),
//! 2. the formatted read (delimiter splitting + assert + index upkeep),
//! 3. object files (precompiled canonical cells).

use std::time::Instant;
use xsb::core::Engine;
use xsb_bench::bulkload::{generate_delimited, load_formatted, load_general, load_object};

fn main() {
    let n = 50_000;
    println!("loading {n} facts emp(Id, Next, Name) three ways:\n");

    let t = Instant::now();
    let mut e1 = Engine::new();
    load_general(&mut e1, "emp", n).expect("general load");
    let t_general = t.elapsed();
    println!("general reader   {t_general:>12.2?}");

    let data = generate_delimited(n);
    let t = Instant::now();
    let mut e2 = Engine::new();
    load_formatted(&mut e2, "emp", &data).expect("formatted load");
    let t_formatted = t.elapsed();
    println!("formatted read   {t_formatted:>12.2?}");

    let object = e2.save_object("emp", 3).expect("encode object");
    let t = Instant::now();
    let mut e3 = Engine::new();
    load_object(&mut e3, &object).expect("object load");
    let t_object = t.elapsed();
    println!(
        "object file      {t_object:>12.2?}   ({} KiB on disk)",
        object.len() / 1024
    );

    println!(
        "\nspeedups: formatted is {:.1}x the general reader; object is {:.1}x formatted",
        t_general.as_secs_f64() / t_formatted.as_secs_f64(),
        t_formatted.as_secs_f64() / t_object.as_secs_f64()
    );

    // all three engines agree, and indexed retrieval works on each
    for (name, e) in [
        ("general", &mut e1),
        ("formatted", &mut e2),
        ("object", &mut e3),
    ] {
        let count = e.count("emp(X, Y, Z)").expect("count");
        let hit = e.count("emp(777, Y, Z)").expect("point query");
        println!("{name:>10}: {count} facts, emp(777,_,_) → {hit} row");
        assert_eq!(count, n);
        assert_eq!(hit, 1);
    }
}
