//! A deductive database session: an org chart with recursive views,
//! multi-field indexing, updates, and aggregation.
//!
//! ```sh
//! cargo run --example company_db
//! ```
//!
//! Shows the engine as "an underlying query engine for deductive database
//! systems" (paper abstract): the extensional database lives in dynamic
//! predicates with `:- index` declarations (§4.5), the intensional layer
//! is tabled rules, aggregation uses `findall`/`tfindall` (§4.7), and data
//! changes through `assert`/`retract` (§4.6).

use xsb::core::Engine;

fn main() {
    let mut db = Engine::new();

    db.consult(
        r#"
        % ---- extensional database (dynamic, indexed) ----
        :- dynamic emp/4.
        :- index(emp/4, [1, 2, 3+4]).       % name; dept; joint(mgr, level)
        :- dynamic dept/2.

        % ---- intensional layer ----
        :- table reports_to/2.
        reports_to(E, M)  :- emp(E, _, M, _).
        reports_to(E, M2) :- reports_to(E, M1), emp(M1, _, M2, _).

        :- table same_dept_chain/2.
        same_dept_chain(E, M) :- emp(E, D, M, _), emp(M, D, _, _).
        same_dept_chain(E, M2) :- same_dept_chain(E, M1), emp(M1, D, M2, _), emp(M2, D, _, _).

        dept_size(D, N) :- findall(E, emp(E, D, _, _), L), length(L, N).
        org_below(M, L) :- tfindall(E, reports_to(E, M), L).
    "#,
    )
    .expect("schema loads");

    // bulk-insert the extensional data: emp(name, dept, manager, level)
    let rows = [
        ("ada", "eng", "grace", 3),
        ("alan", "eng", "grace", 3),
        ("grace", "eng", "linus", 2),
        ("linus", "eng", "root", 1),
        ("edgar", "db", "codd", 3),
        ("codd", "db", "root", 1),
        ("root", "board", "root0", 0),
    ];
    for (name, dept, mgr, lvl) in rows {
        db.query(&format!("assert(emp({name}, {dept}, {mgr}, {lvl}))"))
            .expect("insert");
    }

    println!("everyone (transitively) reporting to linus:");
    for sol in db.query("reports_to(E, linus)").expect("query") {
        println!("  {}", sol.get("E").unwrap().display(&db.syms));
    }

    println!("\ndepartment sizes:");
    for sol in db
        .query("dept_size(eng, N1), dept_size(db, N2)")
        .expect("query")
    {
        println!(
            "  eng: {}   db: {}",
            sol.get("N1").unwrap().display(&db.syms),
            sol.get("N2").unwrap().display(&db.syms)
        );
    }

    // tfindall suspends until the reports_to table completes (paper §4.7)
    println!("\ncomplete org below root (via tfindall):");
    for sol in db.query("org_below(root, L)").expect("query") {
        println!("  {}", sol.get("L").unwrap().display(&db.syms));
    }

    // joint-index retrieval: mgr+level bound uses the 3+4 index
    println!("\ngrace's direct level-3 reports (joint index on mgr+level):");
    for sol in db.query("emp(E, _, grace, 3)").expect("query") {
        println!("  {}", sol.get("E").unwrap().display(&db.syms));
    }

    // an update: ada transfers to the db department
    db.query("retract(emp(ada, eng, grace, 3))").expect("del");
    db.query("assert(emp(ada, db, codd, 3))").expect("ins");
    db.abolish_all_tables(); // views over updated data must recompute
    println!("\nafter ada's transfer:");
    for sol in db
        .query("dept_size(eng, N1), dept_size(db, N2)")
        .expect("query")
    {
        println!(
            "  eng: {}   db: {}",
            sol.get("N1").unwrap().display(&db.syms),
            sol.get("N2").unwrap().display(&db.syms)
        );
    }
    for sol in db.query("org_below(codd, L)").expect("query") {
        println!(
            "  codd's org is now: {}",
            sol.get("L").unwrap().display(&db.syms)
        );
    }
}
