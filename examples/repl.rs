//! An interactive read-eval-print loop, the way XSB is "normally invoked"
//! (paper §4.2).
//!
//! ```sh
//! cargo run --example repl
//! ```
//!
//! Commands:
//!   `?- Goal.`            run a query, print up to 10 solutions
//!   `Head :- Body.` / `Fact.`   consult a clause into the session
//!   `:- Directive.`       e.g. `:- table path/2.`
//!   `:load FILE`          consult a file
//!   `:tables`             show live table count
//!   `:abolish`            forget all tables
//!   `:quit`
//!
//! Example session:
//! ```text
//! ?- :- table path/2.
//! ?- path(X,Y) :- edge(X,Y).
//! ?- path(X,Y) :- path(X,Z), edge(Z,Y).
//! ?- edge(1,2).
//! ?- edge(2,1).
//! ?- ?- path(1, X).
//! X = 2 ;  X = 1 ;  no more solutions.
//! ```

use std::io::{BufRead, Write};
use xsb::core::Engine;

const MAX_SHOWN: usize = 10;

fn main() {
    let mut engine = Engine::new();
    engine.set_step_limit(Some(50_000_000)); // guard against runaway SLD loops
                                             // clauses typed at the prompt accumulate in a session program; each
                                             // addition re-consults the whole buffer so multi-clause predicates
                                             // grow instead of being redefined line by line
    let mut session_src = String::new();
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();

    println!("rusty-xsb interactive shell — :quit to exit, :help for help");
    loop {
        print!("?- ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ":quit" | ":q" | "halt." => break,
            ":help" => {
                println!(
                    "  ?- Goal.       query\n  Fact. / Head :- Body.   consult\n  \
                     :- Directive.  directive\n  :load FILE     consult file\n  \
                     :tables        live table count\n  :abolish       clear tables\n  \
                     :quit          exit"
                );
                continue;
            }
            ":tables" => {
                println!("{} live tables", engine.table_count());
                continue;
            }
            ":abolish" => {
                engine.abolish_all_tables();
                println!("tables cleared");
                continue;
            }
            _ => {}
        }
        if let Some(path) = line.strip_prefix(":load ") {
            match std::fs::read_to_string(path.trim()) {
                Ok(src) => {
                    session_src.push_str(&src);
                    session_src.push('\n');
                    match reconsult(&session_src) {
                        Ok(e2) => {
                            engine = e2;
                            println!("loaded {path}");
                        }
                        Err(e) => println!("error: {e}"),
                    }
                }
                Err(e) => println!("cannot read {path}: {e}"),
            }
            continue;
        }
        // a query?
        if let Some(q) = line.strip_prefix("?-") {
            let q = q.trim().trim_end_matches('.');
            run_query(&mut engine, q);
            continue;
        }
        // otherwise treat as program text (clause or directive)
        let src = if line.ends_with('.') {
            line.to_string()
        } else {
            format!("{line}.")
        };
        let mut candidate = session_src.clone();
        candidate.push_str(&src);
        candidate.push('\n');
        match reconsult(&candidate) {
            Ok(e2) => {
                engine = e2;
                session_src = candidate;
                println!("ok");
            }
            Err(e) => println!("error: {e}"),
        }
    }
    println!("bye.");
}

/// Builds a fresh engine from the accumulated session program.
fn reconsult(src: &str) -> Result<Engine, xsb::EngineError> {
    let mut e = Engine::new();
    e.set_step_limit(Some(50_000_000));
    e.consult(src)?;
    Ok(e)
}

fn run_query(engine: &mut Engine, q: &str) {
    // collect solutions first (run_query borrows the engine mutably),
    // render against the symbol table afterwards
    let mut total = 0usize;
    let mut kept: Vec<xsb::core::Solution> = Vec::new();
    let result = engine.run_query(q, |sol| {
        total += 1;
        if kept.len() < MAX_SHOWN {
            kept.push(sol.clone());
        }
        true
    });
    match result {
        Ok(()) => {
            for sol in &kept {
                if sol.bindings.is_empty() {
                    println!("yes");
                } else {
                    let line = sol
                        .bindings
                        .iter()
                        .map(|(n, t)| format!("{n} = {}", t.display(&engine.syms)))
                        .collect::<Vec<_>>()
                        .join(", ");
                    println!("{line}");
                }
            }
            if total == 0 {
                println!("no");
            } else if total > kept.len() {
                println!("... and {} more solutions", total - kept.len());
            }
        }
        Err(e) => println!("error: {e}"),
    }
}
