//! Quickstart: tabled transitive closure on a cyclic graph.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The program below is the paper's §5 example. Under plain Prolog (SLD)
//! the query `path(1, X)` would loop forever on the cycle; with
//! `:- table path/2.` the SLG engine terminates, answers each reachable
//! node exactly once, and remembers the completed table for later queries.

use xsb::core::Engine;

fn main() {
    let mut engine = Engine::new();

    engine
        .consult(
            r#"
            :- table path/2.
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- path(X, Z), edge(Z, Y).

            edge(1, 2).  edge(2, 3).  edge(3, 4).  edge(4, 1).   % a cycle!
            edge(3, 5).
        "#,
        )
        .expect("program loads");

    println!("nodes reachable from 1:");
    for sol in engine.query("path(1, X)").expect("query runs") {
        println!("  X = {}", sol.get("X").unwrap().display(&engine.syms));
    }

    // ground queries hit the completed table
    println!(
        "path(1, 5)? {}",
        engine.holds("path(1, 5)").expect("query runs")
    );
    println!(
        "path(5, 1)? {}",
        engine.holds("path(5, 1)").expect("query runs")
    );

    // the left-recursive rule above would loop under SLD; see for yourself
    // with an untabled variant and a step limit:
    let mut sld = Engine::new();
    sld.consult(
        "path2(X,Y) :- path2(X,Z), edge(Z,Y).\n\
         path2(X,Y) :- edge(X,Y).\n\
         edge(1,2). edge(2,1).",
    )
    .expect("program loads");
    sld.set_step_limit(Some(100_000));
    match sld.count("path2(1, X)") {
        Err(e) => println!("untabled left recursion: {e}"),
        Ok(n) => println!("unexpected: {n} answers"),
    }
}
