//! Property-based tests on core invariants: term round-trips through the
//! machine representation, list builtins against Rust reference semantics,
//! answer-set properties of tabling, and the first-string trie against a
//! naive clause filter.

// Property tests require the external `proptest` crate, which the
// offline sandbox cannot fetch. Re-add the dev-dependency and enable
// the `proptest` feature to run these.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use xsb::core::Engine;
use xsb_syntax::Term;

// ---------------------------------------------------------------------
// random ground terms
// ---------------------------------------------------------------------

/// AST strategy for small ground terms over a fixed symbol pool.
fn ground_term(syms: &'static [&'static str]) -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0..64i64).prop_map(|i| i.to_string()),
        proptest::sample::select(syms).prop_map(|s| s.to_string()),
    ];
    leaf.prop_recursive(3, 24, 3, move |inner| {
        prop_oneof![
            (
                proptest::sample::select(syms),
                proptest::collection::vec(inner.clone(), 1..3)
            )
                .prop_map(|(f, args)| format!("{f}({})", args.join(","))),
            proptest::collection::vec(inner, 0..3)
                .prop_map(|items| format!("[{}]", items.join(","))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// assert → retract round-trip: any ground term stored as a fact can
    /// be found again by an identical query, and `==`-identically so.
    #[test]
    fn assert_query_roundtrip(t in ground_term(&["f", "g", "atom", "b"])) {
        let mut e = Engine::new();
        e.consult(":- dynamic holds/1.").unwrap();
        e.query(&format!("assert(holds({t}))")).unwrap();
        let q1 = format!("holds(X), X == {t}");
        prop_assert!(e.holds(&q1).unwrap());
        let q2 = format!("retract(holds({t}))");
        prop_assert!(e.holds(&q2).unwrap());
        prop_assert_eq!(e.count("holds(_)").unwrap(), 0);
    }

    /// copy_term produces a variant: `==` to the original for ground terms.
    #[test]
    fn copy_term_ground_identity(t in ground_term(&["f", "g"])) {
        let mut e = Engine::new();
        let q = format!("copy_term({t}, C), C == {t}");
        prop_assert!(e.holds(&q).unwrap());
    }

    /// sort/2 agrees with Rust's sort+dedup on integer lists.
    #[test]
    fn sort_matches_reference(mut xs in proptest::collection::vec(-50i64..50, 0..12)) {
        let mut e = Engine::new();
        let list = format!(
            "[{}]",
            xs.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(",")
        );
        let sols = e.query(&format!("sort({list}, S)")).unwrap();
        xs.sort();
        xs.dedup();
        let expect = format!(
            "[{}]",
            xs.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(",")
        );
        let got = format!("{}", sols[0].get("S").unwrap().display(&e.syms));
        prop_assert_eq!(got, expect);
    }

    /// append/3 splits a list in exactly len+1 ways, and each split
    /// re-concatenates to the original.
    #[test]
    fn append_split_count(xs in proptest::collection::vec(0i64..9, 0..8)) {
        let mut e = Engine::new();
        let list = format!(
            "[{}]",
            xs.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(",")
        );
        prop_assert_eq!(
            e.count(&format!("append(X, Y, {list})")).unwrap(),
            xs.len() + 1
        );
        let q = format!("append(X, Y, {list}), append(X, Y, Z), Z == {list}");
        prop_assert!(e.holds(&q).unwrap());
    }

    /// Tabled answers are set-semantics: no duplicates, invariant under
    /// clause order, and equal to the untabled answer *set* on acyclic
    /// graphs.
    #[test]
    fn tabled_answers_are_a_set(edges in proptest::collection::vec((1i64..=6, 1i64..=6), 1..14)) {
        // make it acyclic by orienting edges upward, so SLD also terminates
        let edges: Vec<(i64, i64)> = edges
            .into_iter()
            .filter(|&(a, b)| a < b)
            .collect();
        let mut facts = String::new();
        for &(a, b) in &edges {
            facts.push_str(&format!("edge({a},{b}).\n"));
        }
        // edge/2 is declared dynamic so the empty edge set is well-defined
        let tabled = format!(
            ":- dynamic edge/2.\n:- table path/2.\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- path(X,Z), edge(Z,Y).\n{facts}"
        );
        let sld = format!(
            ":- dynamic edge/2.\npath(X,Y) :- edge(X,Y).\npath(X,Y) :- edge(X,Z), path(Z,Y).\n{facts}"
        );
        let collect = |src: &str| -> Vec<(i64, i64)> {
            let mut e = Engine::new();
            e.consult(src).unwrap();
            let mut out = Vec::new();
            e.run_query("path(X, Y)", |s| {
                if let (Some(Term::Int(x)), Some(Term::Int(y))) = (s.get("X"), s.get("Y")) {
                    out.push((*x, *y));
                }
                true
            })
            .unwrap();
            out
        };
        let tab = collect(&tabled);
        let mut tab_sorted = tab.clone();
        tab_sorted.sort();
        tab_sorted.dedup();
        prop_assert_eq!(tab.len(), tab_sorted.len(), "tabled answers contain no duplicates");
        let mut sld_set = collect(&sld);
        sld_set.sort();
        sld_set.dedup();
        prop_assert_eq!(tab_sorted, sld_set, "tabled set == SLD set on acyclic input");
    }

    /// between/3 enumerates exactly the closed interval.
    #[test]
    fn between_enumerates_interval(lo in -20i64..20, len in 0i64..30) {
        let hi = lo + len;
        let mut e = Engine::new();
        prop_assert_eq!(
            e.count(&format!("between({lo}, {hi}, X)")).unwrap(),
            (len + 1) as usize
        );
    }

    /// findall result length equals the solution count of the goal.
    #[test]
    fn findall_length_matches_count(n in 0i64..20) {
        let mut e = Engine::new();
        e.consult(":- dynamic item/1.").unwrap();
        for i in 0..n {
            e.query(&format!("assert(item({i}))")).unwrap();
        }
        let direct = e.count("item(_)").unwrap();
        let sols = e.query("findall(X, item(X), L), length(L, N)").unwrap();
        prop_assert_eq!(sols[0].get("N"), Some(&Term::Int(direct as i64)));
    }
}

// ---------------------------------------------------------------------
// first-string trie vs naive filtering
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A first-string-indexed predicate answers exactly like the same
    /// predicate with default hash indexing.
    #[test]
    fn first_string_index_is_transparent(
        rows in proptest::collection::vec((0i64..6, 0i64..6), 1..15),
        qa in 0i64..6,
    ) {
        let mut facts = String::new();
        for &(a, b) in &rows {
            facts.push_str(&format!("p(g({a}), f({b})).\n"));
        }
        let mut hash_e = Engine::new();
        hash_e.consult(&facts).unwrap();
        let mut trie_e = Engine::new();
        trie_e
            .consult(&format!(":- first_string_index(p/2).\n{facts}"))
            .unwrap();
        for q in [
            format!("p(g({qa}), Y)"),
            "p(X, Y)".to_string(),
            format!("p(X, f({qa}))"),
        ] {
            prop_assert_eq!(
                hash_e.count(&q).unwrap(),
                trie_e.count(&q).unwrap(),
                "query {}", q
            );
        }
    }
}
