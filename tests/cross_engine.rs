//! Cross-engine agreement: the SLG-WAM (top-down tabled), the bottom-up
//! datalog evaluator (all strategies), and the WFS evaluator must compute
//! the same answers on stratified programs — the paper's correctness
//! premise for comparing their performance at all.

// Property tests require the external `proptest` crate, which the
// offline sandbox cannot fetch. Re-add the dev-dependency and enable
// the `proptest` feature to run these.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use xsb::core::Engine;
use xsb::datalog::{Datalog, Strategy};
use xsb::wfs::{Truth, Wfs};
use xsb_datalog::ast::Value;
use xsb_syntax::Term;

/// Random edge sets over a small node domain.
fn edges_strategy() -> impl Strategy2 {
    proptest::collection::vec((1i64..=8, 1i64..=8), 1..20)
}

// (alias to dodge the name clash with xsb::datalog::Strategy)
trait Strategy2: proptest::strategy::Strategy<Value = Vec<(i64, i64)>> {}
impl<T: proptest::strategy::Strategy<Value = Vec<(i64, i64)>>> Strategy2 for T {}

const RULES: &str = "
    path(X,Y) :- edge(X,Y).
    path(X,Y) :- path(X,Z), edge(Z,Y).
";

fn slg_path_pairs(edges: &[(i64, i64)]) -> Vec<(i64, i64)> {
    let mut e = Engine::new();
    e.declare_dynamic("edge", 2).unwrap();
    e.consult(&format!(":- table path/2.\n{RULES}")).unwrap();
    let edge = e.syms.intern("edge");
    for &(a, b) in edges {
        e.assert_term(&Term::Compound(edge, vec![Term::Int(a), Term::Int(b)]))
            .unwrap();
    }
    let mut out = Vec::new();
    e.run_query("path(X, Y)", |s| {
        let x = match s.get("X") {
            Some(Term::Int(i)) => *i,
            other => panic!("{other:?}"),
        };
        let y = match s.get("Y") {
            Some(Term::Int(i)) => *i,
            other => panic!("{other:?}"),
        };
        out.push((x, y));
        true
    })
    .unwrap();
    out.sort();
    out.dedup();
    out
}

fn datalog_path_pairs(edges: &[(i64, i64)], strat: Strategy) -> Vec<(i64, i64)> {
    let mut d = Datalog::new(RULES).unwrap();
    for &(a, b) in edges {
        d.add_fact("edge", &[Value::Int(a), Value::Int(b)]);
    }
    let mut out: Vec<(i64, i64)> = d
        .query("path(X, Y)", strat)
        .unwrap()
        .into_iter()
        .map(|row| match (row[0], row[1]) {
            (Value::Int(a), Value::Int(b)) => (a, b),
            other => panic!("{other:?}"),
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Reference: Floyd-Warshall style transitive closure.
fn reference_pairs(edges: &[(i64, i64)]) -> Vec<(i64, i64)> {
    let mut reach = [[false; 9]; 9];
    for &(a, b) in edges {
        reach[a as usize][b as usize] = true;
    }
    for k in 1..9 {
        for i in 1..9 {
            for j in 1..9 {
                if reach[i][k] && reach[k][j] {
                    reach[i][j] = true;
                }
            }
        }
    }
    let mut out = Vec::new();
    for (i, row) in reach.iter().enumerate() {
        for (j, &r) in row.iter().enumerate() {
            if r {
                out.push((i as i64, j as i64));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transitive_closure_agrees_across_engines(edges in edges_strategy()) {
        let expect = reference_pairs(&edges);
        prop_assert_eq!(&slg_path_pairs(&edges), &expect, "SLG-WAM");
        prop_assert_eq!(&datalog_path_pairs(&edges, Strategy::SemiNaive), &expect, "semi-naive");
        prop_assert_eq!(&datalog_path_pairs(&edges, Strategy::Naive), &expect, "naive");
    }

    #[test]
    fn goal_directed_strategies_agree(edges in edges_strategy()) {
        let expect: Vec<(i64,i64)> = reference_pairs(&edges)
            .into_iter()
            .filter(|&(a, _)| a == 1)
            .collect();
        // SLG with bound first argument
        let mut e = Engine::new();
        e.declare_dynamic("edge", 2).unwrap();
        e.consult(&format!(":- table path/2.\n{RULES}")).unwrap();
        let edge = e.syms.intern("edge");
        for &(a, b) in &edges {
            e.assert_term(&Term::Compound(edge, vec![Term::Int(a), Term::Int(b)]))
                .unwrap();
        }
        prop_assert_eq!(e.count("path(1, Y)").unwrap(), expect.len(), "SLG path(1,Y)");
        // magic and factored bottom-up
        let mut d = Datalog::new(RULES).unwrap();
        for &(a, b) in &edges {
            d.add_fact("edge", &[Value::Int(a), Value::Int(b)]);
        }
        prop_assert_eq!(d.query("path(1, Y)", Strategy::Magic).unwrap().len(), expect.len(), "magic");
        prop_assert_eq!(
            d.query("path(1, Y)", Strategy::MagicFactored).unwrap().len(),
            expect.len(),
            "factored"
        );
    }

    #[test]
    fn wfs_agrees_with_slg_on_stratified_reachability(edges in edges_strategy()) {
        // unreach(X) :- node(X), tnot reach(X): second stratum
        let nodes: Vec<i64> = (1..=8).collect();
        let mut src = String::from(
            "reach(1).\nreach(Y) :- reach(X), edge(X,Y).\n\
             unreach(X) :- node(X), tnot reach(X).\n",
        );
        for &(a, b) in &edges {
            src.push_str(&format!("edge({a},{b}).\n"));
        }
        for &n in &nodes {
            src.push_str(&format!("node({n}).\n"));
        }
        // WFS model
        let mut w = Wfs::new(&src).unwrap();
        // SLG engine (same program; tabled reach)
        let mut e = Engine::new();
        e.consult(&format!(":- table reach/1.\n{src}")).unwrap();
        for &n in &nodes {
            let wt = w.truth(&format!("unreach({n})")).unwrap();
            let slg = e.holds(&format!("unreach({n})")).unwrap();
            prop_assert_eq!(wt == Truth::True, slg, "node {}", n);
            prop_assert_ne!(wt, Truth::Undefined, "stratified program is two-valued");
        }
    }
}
