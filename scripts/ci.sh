#!/usr/bin/env bash
# Offline CI gate: format, lint, build, test, and a bench smoke run that
# leaves a machine-readable artifact. No network access required — the
# workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

ARTIFACT_DIR="${CI_ARTIFACT_DIR:-target/ci}"
mkdir -p "$ARTIFACT_DIR"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace --offline

echo "== cargo test -q"
cargo test -q --workspace --offline

echo "== cargo test --features proptest (deterministic property tests)"
cargo test -q --offline --features proptest
cargo test -q --offline -p xsb-core --features proptest

echo "== bench smoke run (JSON artifact)"
cargo run --release --offline -p xsb-bench --bin harness -- \
    fig2 --quick --json "$ARTIFACT_DIR/bench.json"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
    "$ARTIFACT_DIR/bench.json" 2>/dev/null \
    || grep -q '"schema"' "$ARTIFACT_DIR/bench.json"
echo "bench artifact: $ARTIFACT_DIR/bench.json"

echo "== serving smoke run (table lifetime counters)"
cargo run --release --offline -p xsb-bench --bin harness -- \
    serving --quick --json "$ARTIFACT_DIR/serving.json"
python3 - "$ARTIFACT_DIR/serving.json" <<'PY' || grep -o '"serving":{[^}]*}' "$ARTIFACT_DIR/serving.json"
import json, sys
s = json.load(open(sys.argv[1]))["serving"]
print("table lifetime: hits=%d misses=%d invalidations=%d evictions=%d "
      "warm_speedup=%.1fx"
      % (s["table_hits"], s["table_misses"], s["table_invalidations"],
         s["table_evictions"], s["warm_speedup"]))
assert s["table_hits"] > 0 and s["table_invalidations"] > 0 \
    and s["table_evictions"] > 0, "serving counters did not move"
PY
echo "serving artifact: $ARTIFACT_DIR/serving.json"

echo "== factoring smoke run (E14: answer-store cells, cold/warm serving)"
cargo run --release --offline -p xsb-bench --bin harness -- \
    factoring --quick --json "$ARTIFACT_DIR/factoring.json"
python3 - "$ARTIFACT_DIR/factoring.json" <<'PY' || grep -q '"factoring"' "$ARTIFACT_DIR/factoring.json"
import json, sys
rows = json.load(open(sys.argv[1]))["factoring"]
saved = sum(r["answer_cells_saved"] for r in rows if r["factored"])
print("answer_cells_saved (factored rows): %d" % saved)
for r in rows:
    print("n=%-5d index=%-4s store=%-8s store_cells=%-6d cold=%.6fs warm=%.6fs"
          % (r["n"], r["index"], "factored" if r["factored"] else "full",
             r["store_cells"], r["cold_secs"], r["warm_secs"]))
assert saved > 0, "substitution factoring saved no cells"
by_key = {(r["n"], r["index"], r["factored"]): r for r in rows}
for (n, index, factored), r in by_key.items():
    if factored:
        base = by_key[(n, index, False)]
        assert r["store_cells"] < base["store_cells"], (
            "factored store (%d cells) not smaller than unfactored (%d) "
            "on n=%d %s" % (r["store_cells"], base["store_cells"], n, index))
PY
echo "factoring artifact: $ARTIFACT_DIR/factoring.json"

echo "CI OK"
