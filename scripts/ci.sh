#!/usr/bin/env bash
# Offline CI gate: format, lint, build, test, bench smoke runs that leave
# machine-readable artifacts, and a bench-regression gate against the
# committed BENCH_BASELINE.json. No network access required — the
# workspace has no external dependencies.
#
# Usage: scripts/ci.sh [--quick]
#   --quick            skip every bench run (smoke artifacts + regression
#                      gate); fmt, clippy, build, and tests still run
#   CI_ARTIFACT_DIR    where JSON artifacts land (default target/ci)
#   CI_BENCH_TOLERANCE base gate tolerance in percent (default 20)
set -euo pipefail
cd "$(dirname "$0")/.."

ARTIFACT_DIR="${CI_ARTIFACT_DIR:-target/ci}"
BENCH_TOLERANCE="${CI_BENCH_TOLERANCE:-20}"
QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) echo "unknown flag: $arg (usage: scripts/ci.sh [--quick])" >&2; exit 2 ;;
    esac
done
mkdir -p "$ARTIFACT_DIR"

HAVE_PYTHON3=0
command -v python3 >/dev/null 2>&1 && HAVE_PYTHON3=1

# validate_json FILE [PATTERN] — structural check on a JSON artifact.
# With python3 it is a full parse; without, every call degrades the same
# way: a grep for PATTERN (default: the schema marker every harness
# report carries). Content-level assertions are separately python3-gated.
validate_json() {
    local file="$1" pattern="${2:-\"schema\"}"
    if [ "$HAVE_PYTHON3" = 1 ]; then
        python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$file"
    else
        grep -q "$pattern" "$file"
    fi
    echo "validated JSON: $file"
}

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace --offline

echo "== pool/shared concurrency tests under watchdog"
# a claim/wait bug shows up as a hang, not a failure: run the racing test
# binaries under a hard timeout first, so a deadlock is a loud CI failure
# instead of a stuck job (falls back to unguarded runs without coreutils)
WATCHDOG=""
command -v timeout >/dev/null 2>&1 && WATCHDOG="timeout -k 15 180"
$WATCHDOG cargo test -q --offline -p xsb-core --test shared_tables
$WATCHDOG cargo test -q --offline -p xsb-core --lib engine_pool
$WATCHDOG cargo test -q --offline -p xsb-core --lib shared

echo "== durability crash matrix under watchdog"
# the crash matrix kills the WAL at every byte offset and recovers; a
# recovery livelock would hang, so it also runs under the hard timeout
$WATCHDOG cargo test -q --offline -p xsb-core --test durability

echo "== network server tests under watchdog"
# a pipelining or backpressure bug in the TCP front-end shows up as a
# reader/writer thread waiting forever on a frame that never comes, so
# the whole server suite (wire round-trips, integration, hostile-input
# barrage) runs under the same hard timeout
$WATCHDOG cargo test -q --offline -p xsb-server

echo "== cargo test -q"
cargo test -q --workspace --offline

echo "== cargo test --features proptest (deterministic property tests)"
cargo test -q --offline --features proptest
cargo test -q --offline -p xsb-core --features proptest
$WATCHDOG cargo test -q --offline -p xsb-server --features proptest

if [ "$QUICK" = 1 ]; then
    echo "== bench runs skipped (--quick)"
    echo "CI OK (quick)"
    exit 0
fi

echo "== bench smoke run (JSON artifact)"
cargo run --release --offline -p xsb-bench --bin harness -- \
    fig2 --quick --json "$ARTIFACT_DIR/bench.json"
validate_json "$ARTIFACT_DIR/bench.json"

echo "== serving smoke run (table lifetime counters)"
cargo run --release --offline -p xsb-bench --bin harness -- \
    serving --quick --json "$ARTIFACT_DIR/serving.json"
validate_json "$ARTIFACT_DIR/serving.json" '"serving"'
if [ "$HAVE_PYTHON3" = 1 ]; then
python3 - "$ARTIFACT_DIR/serving.json" <<'PY'
import json, sys
s = json.load(open(sys.argv[1]))["serving"]
print("table lifetime: hits=%d misses=%d invalidations=%d evictions=%d "
      "warm_speedup=%.1fx"
      % (s["table_hits"], s["table_misses"], s["table_invalidations"],
         s["table_evictions"], s["warm_speedup"]))
assert s["table_hits"] > 0 and s["table_invalidations"] > 0 \
    and s["table_evictions"] > 0, "serving counters did not move"
PY
fi

echo "== factoring smoke run (E14: answer-store cells, cold/warm serving)"
cargo run --release --offline -p xsb-bench --bin harness -- \
    factoring --quick --json "$ARTIFACT_DIR/factoring.json"
validate_json "$ARTIFACT_DIR/factoring.json" '"factoring"'
if [ "$HAVE_PYTHON3" = 1 ]; then
python3 - "$ARTIFACT_DIR/factoring.json" <<'PY'
import json, sys
rows = json.load(open(sys.argv[1]))["factoring"]
saved = sum(r["answer_cells_saved"] for r in rows if r["factored"])
print("answer_cells_saved (factored rows): %d" % saved)
for r in rows:
    print("n=%-5d index=%-4s store=%-8s store_cells=%-6d cold=%.6fs warm=%.6fs"
          % (r["n"], r["index"], "factored" if r["factored"] else "full",
             r["store_cells"], r["cold_secs"], r["warm_secs"]))
assert saved > 0, "substitution factoring saved no cells"
by_key = {(r["n"], r["index"], r["factored"]): r for r in rows}
for (n, index, factored), r in by_key.items():
    if factored:
        base = by_key[(n, index, False)]
        assert r["store_cells"] < base["store_cells"], (
            "factored store (%d cells) not smaller than unfactored (%d) "
            "on n=%d %s" % (r["store_cells"], base["store_cells"], n, index))
PY
fi

echo "== concurrent smoke run (E15: shared-table engine pool)"
cargo run --release --offline -p xsb-bench --bin harness -- \
    concurrent --quick --json "$ARTIFACT_DIR/concurrent.json"
validate_json "$ARTIFACT_DIR/concurrent.json" '"concurrent"'
if [ "$HAVE_PYTHON3" = 1 ]; then
python3 - "$ARTIFACT_DIR/concurrent.json" <<'PY'
import json, sys
c = json.load(open(sys.argv[1]))["concurrent"]
last = c["rows"][-1]
print("pool @%d workers: cold_qps=%.0f dup_computes=%d warm_qps=%.0f "
      "shared_hits=%d publishes=%d invalidations=%d shared_speedup=%.1fx"
      % (last["workers"], last["cold_qps"], last["cold_dup_computes"],
         last["warm_qps"], last["shared_hits"], last["shared_publishes"],
         last["shared_invalidations"], c["shared_speedup"]))
assert last["shared_hits"] > 0, "no worker imported a shared table"
assert last["shared_publishes"] > 0, "no worker published a table"
assert last["shared_invalidations"] > 0, "churn did not invalidate"
assert last["cold_dup_computes"] == 0, (
    "claim/wait let %d duplicated cold computes through"
    % last["cold_dup_computes"])
# the contended cold phase already amortizes one compute over N served
# queries, so warm/cold sits well under the old detached-cold ratio; the
# hard dedup guarantee is the cold_dup_computes == 0 assert above
assert c["shared_speedup"] >= 1.2, (
    "warm serving did not beat contended cold: %.2f" % c["shared_speedup"])
PY
fi

echo "== emulator perf smoke (E16: fused superinstructions vs plain dispatch)"
cargo run --release --offline -p xsb-bench --bin harness -- \
    emulator --quick --json "$ARTIFACT_DIR/emulator.json"
validate_json "$ARTIFACT_DIR/emulator.json" '"emulator"'
if [ "$HAVE_PYTHON3" = 1 ]; then
python3 - "$ARTIFACT_DIR/emulator.json" <<'PY'
import json, sys
rows = json.load(open(sys.argv[1]))["emulator"]
print("%-10s %12s %12s %14s %14s" % (
    "workload", "before ips", "after ips", "before (ns)", "after (ns)"))
for r in rows:
    print("%-10s %12.0f %12.0f %14d %14d" % (
        r["workload"], r["unfused_instructions_per_sec"],
        r["instructions_per_sec"], r["unfused_query_time_ns"],
        r["query_time_ns"]))
    # instruction counts are deterministic (wall times are not): fusion
    # must retire the same work in strictly fewer dispatches
    assert r["fused_instructions"] < r["work_instructions"], (
        "%s: fusion did not reduce dispatches (%d vs %d)"
        % (r["workload"], r["fused_instructions"], r["work_instructions"]))
    assert r["instructions_per_sec"] > 0, "%s: zero throughput" % r["workload"]
PY
fi

echo "== durability smoke run (E17: group commit, recovery, checkpoint)"
cargo run --release --offline -p xsb-bench --bin harness -- \
    durability --quick --json "$ARTIFACT_DIR/durability.json"
validate_json "$ARTIFACT_DIR/durability.json" '"durability"'
if [ "$HAVE_PYTHON3" = 1 ]; then
python3 - "$ARTIFACT_DIR/durability.json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))["durability"]
for w in d["windows"]:
    print("window=%-6dus commits=%d qps=%.0f fsyncs=%d p50=%dns p99=%dns"
          % (w["window_us"], w["commits"], w["commit_qps"], w["fsyncs"],
             w["commit_p50_ns"], w["commit_p99_ns"]))
for r in d["recovery"]:
    print("facts=%-6d log=%-8dB recovery=%.2fms replayed=%d"
          % (r["facts"], r["log_bytes"], r["recovery_ms"], r["replayed"]))
assert d["recovery_torn_facts"] == 0, (
    "%d torn facts survived recovery" % d["recovery_torn_facts"])
assert d["commit_qps"] > 0, "zero commit throughput"
assert d["checkpoint_bytes_after"] < d["checkpoint_bytes_before"], (
    "checkpoint did not truncate the log (%d -> %d)"
    % (d["checkpoint_bytes_before"], d["checkpoint_bytes_after"]))
# each recovery replays program + every committed assert exactly once
for r in d["recovery"]:
    assert r["replayed"] == r["facts"] + 1, (
        "recovery replayed %d records for %d facts" % (r["replayed"], r["facts"]))
PY
fi

echo "== network serving smoke run (E18: closed-loop load over TCP)"
# a stuck connection or a protocol error under load would hang the bench
# rather than fail it, so the smoke run sits under the watchdog too
$WATCHDOG cargo run --release --offline -p xsb-bench --bin harness -- \
    serving_net --quick --json "$ARTIFACT_DIR/serving_net.json"
validate_json "$ARTIFACT_DIR/serving_net.json" '"serving_net"'
if [ "$HAVE_PYTHON3" = 1 ]; then
python3 - "$ARTIFACT_DIR/serving_net.json" <<'PY'
import json, sys
s = json.load(open(sys.argv[1]))["serving_net"]
for r in s["rows"]:
    print("conns=%-3d depth=%-3d requests=%-5d qps=%.0f p50=%dns p99=%dns "
          "busy=%d errors=%d"
          % (r["connections"], r["depth"], r["requests"], r["qps"],
             r["p50_ns"], r["p99_ns"], r["busy"], r["errors"]))
print("overload rejection_rate=%.2f stuck=%d protocol_errors=%d"
      % (s["rejection_rate"], s["stuck_connections"], s["protocol_errors"]))
assert s["stuck_connections"] == 0, (
    "%d connections stuck at shutdown" % s["stuck_connections"])
assert s["protocol_errors"] == 0, (
    "%d protocol errors from well-formed clients" % s["protocol_errors"])
assert s["rejection_rate"] > 0, "overload burst was never shed with Busy"
assert s["qps"] > 0, "zero serving throughput"
assert all(r["busy"] == 0 and r["errors"] == 0 for r in s["rows"]), (
    "closed-loop sweep saw Busy or engine errors")
PY
fi

echo "== traced query run (Chrome trace-event export + opcode profile)"
cargo run --release --offline -p xsb-bench --bin harness -- \
    trace --json "$ARTIFACT_DIR/trace.json"
validate_json "$ARTIFACT_DIR/trace.json" '"traceEvents"'
if [ "$HAVE_PYTHON3" = 1 ]; then
python3 - "$ARTIFACT_DIR/trace.json" <<'PY'
import json, sys
t = json.load(open(sys.argv[1]))
ev = t["traceEvents"]
assert ev, "traced query produced no spans"
assert all(e["ph"] == "X" and "ts" in e and "dur" in e for e in ev), (
    "malformed trace event")
names = {e["name"] for e in ev}
assert "query" in names, "no query span: %s" % sorted(names)
assert any(n.startswith("subgoal") for n in names), (
    "no subgoal span: %s" % sorted(names))
prof = t["profile"]
assert prof["opcodes"], "set_profiling(on) recorded no opcodes"
print("trace: %d spans (%s); profile: %d dispatches, hottest %s"
      % (len(ev), ", ".join(sorted(names)[:4]), prof["total"],
         prof["opcodes"][0]["op"]))
PY
fi

echo "== bench-regression gate (vs BENCH_BASELINE.json, tolerance ${BENCH_TOLERANCE}%)"
# the committed baseline was produced by this same invocation, so the two
# reports are parameter-for-parameter comparable
cargo run --release --offline -p xsb-bench --bin harness -- \
    baseline --quick --json "$ARTIFACT_DIR/bench_current.json" >/dev/null
validate_json "$ARTIFACT_DIR/bench_current.json"
cargo run --release --offline -p xsb-bench --bin bench_gate -- \
    BENCH_BASELINE.json "$ARTIFACT_DIR/bench_current.json" \
    --tolerance "$BENCH_TOLERANCE"

echo "== bench gate self-test (a doctored baseline must fail the gate)"
# inflate one tracked metric in a baseline copy so the real run looks
# like a massive regression; the gate must catch it
sed -E 's/"shared_speedup":[0-9.eE+-]+/"shared_speedup":1000000/' \
    BENCH_BASELINE.json > "$ARTIFACT_DIR/doctored_baseline.json"
if cargo run --release --offline -p xsb-bench --bin bench_gate -- \
    "$ARTIFACT_DIR/doctored_baseline.json" "$ARTIFACT_DIR/bench_current.json" \
    --tolerance "$BENCH_TOLERANCE" >/dev/null; then
    echo "gate self-test FAILED: a known regression passed the gate" >&2
    exit 1
else
    echo "gate self-test OK: the doctored baseline was rejected"
fi

echo "CI OK"
