#!/usr/bin/env bash
# Offline CI gate: format, lint, build, test, and a bench smoke run that
# leaves a machine-readable artifact. No network access required — the
# workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

ARTIFACT_DIR="${CI_ARTIFACT_DIR:-target/ci}"
mkdir -p "$ARTIFACT_DIR"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace --offline

echo "== cargo test -q"
cargo test -q --workspace --offline

echo "== bench smoke run (JSON artifact)"
cargo run --release --offline -p xsb-bench --bin harness -- \
    fig2 --quick --json "$ARTIFACT_DIR/bench.json"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
    "$ARTIFACT_DIR/bench.json" 2>/dev/null \
    || grep -q '"schema"' "$ARTIFACT_DIR/bench.json"
echo "bench artifact: $ARTIFACT_DIR/bench.json"

echo "CI OK"
