//! Umbrella crate re-exporting the rusty-xsb public API.
//!
//! See [`xsb_core::Engine`] for the main entry point.
pub use xsb_core as core;
pub use xsb_datalog as datalog;
pub use xsb_server as server;
pub use xsb_storage as storage;
pub use xsb_syntax as syntax;
pub use xsb_wfs as wfs;

pub use xsb_core::{DurableLog, Engine, EngineError, RecoveryReport, Solution};
pub use xsb_server::{Driver, RemoteConn, Server, ServerConfig};
